"""Open-loop arrival processes: realistic traffic shapes for scenarios.

Every workload before this module was closed-loop — each client issues its
next call a fixed think time after the previous reply, with start offsets
staggered by a scalar or an ad-hoc callable.  An :class:`ArrivalProcess`
makes the *offered load* a first-class, seeded object instead: it maps a
client-group size to the group's per-client start offsets, so the same
process drives discrete clients and cohort-flow mass identically
(``Scenario.clients(256, arrival=Poisson(rate=50.0))``).

Determinism invariants (ARCHITECTURE.md "Traffic model & replay"):

* **One seeded RNG stream per process.**  Each process owns exactly one
  seed; :meth:`ArrivalProcess.offsets` builds a fresh ``random.Random``
  from it on every call, so the process is a pure function of
  ``(parameters, seed, count)`` — two calls, two runs, or two machines
  produce bit-identical offsets.
* **Replay never re-samples.**  Trace recording serialises the *resolved*
  offsets, not the process, so a replayed scenario reuses the recorded
  floats verbatim (see :mod:`repro.traffic.trace`).
* **Position i is the i-th arrival.**  Offsets are returned sorted, so a
  group's protocol interleave (assigned by position) matches arrival
  order.

:func:`resolve_offsets` is the single entry point the cluster layer uses:
it accepts the legacy scalar spacing, the legacy position→offset callable,
and any :class:`ArrivalProcess`, replacing the scalar-vs-callable
special-casing that used to live in ``cluster/scenario.py`` and
``cluster/cohort.py``.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import ClusterError


@dataclass(frozen=True)
class ArrivalProcess:
    """A deterministic, seeded open-loop arrival process.

    Subclasses implement :meth:`sample`, producing ``count`` arrival
    offsets (seconds after the group's start) from a fresh seeded RNG.
    :meth:`offsets` wraps it with the shared guarantees: sorted output,
    non-negative offsets, exactly ``count`` of them.
    """

    seed: int = 0

    def sample(self, rng: random.Random, count: int) -> Iterable[float]:
        raise NotImplementedError

    def offsets(self, count: int) -> list[float]:
        """The group's per-client start offsets, sorted (position = rank)."""
        if count < 0:
            raise ClusterError(f"arrival count must be non-negative, got {count}")
        values = sorted(float(value) for value in self.sample(self._rng(), count))
        if len(values) != count:
            raise ClusterError(
                f"{type(self).__name__} produced {len(values)} offsets for "
                f"{count} clients"
            )
        if values and values[0] < 0:
            raise ClusterError(
                f"arrival offsets must be non-negative, got {values[0]}"
            )
        return values

    def _rng(self) -> random.Random:
        # A fresh generator per call: the process is a pure function of its
        # seed, so recording, replaying and re-running never re-sample.
        return random.Random(self.seed)


@dataclass(frozen=True)
class Poisson(ArrivalProcess):
    """Open-loop Poisson arrivals: exponential i.i.d. inter-arrival gaps.

    ``rate`` is the mean arrival rate in clients per virtual second; the
    group's ``count`` clients arrive over roughly ``count / rate`` seconds.
    """

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ClusterError(f"Poisson rate must be positive, got {self.rate}")

    def sample(self, rng: random.Random, count: int) -> Iterable[float]:
        now = 0.0
        for _ in range(count):
            now += rng.expovariate(self.rate)
            yield now


@dataclass(frozen=True)
class ParetoHeavyTail(ArrivalProcess):
    """Heavy-tailed (Pareto/Lomax) inter-arrival gaps: bursts and long lulls.

    Gaps are ``scale * (Pareto(alpha) - 1)`` — arbitrarily small inside a
    burst, occasionally enormous — with mean ``scale / (alpha - 1)`` for
    ``alpha > 1``.  Smaller ``alpha`` means a heavier tail.
    """

    alpha: float = 1.5
    scale: float = 0.01

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ClusterError(
                f"ParetoHeavyTail alpha must be positive, got {self.alpha}"
            )
        if self.scale <= 0:
            raise ClusterError(
                f"ParetoHeavyTail scale must be positive, got {self.scale}"
            )

    def sample(self, rng: random.Random, count: int) -> Iterable[float]:
        now = 0.0
        for _ in range(count):
            now += self.scale * (rng.paretovariate(self.alpha) - 1.0)
            yield now


@dataclass(frozen=True)
class Diurnal(ArrivalProcess):
    """A load curve over one period: arrivals follow a relative-rate shape.

    ``curve`` gives piecewise-constant relative intensities across equal
    slices of ``period`` (e.g. ``(1, 2, 8, 3)`` — quiet night, morning
    ramp, midday peak, evening tail); arrivals are drawn by inverting the
    cumulative intensity, so the group's whole mass lands inside one
    period, distributed as the curve dictates.
    """

    curve: tuple[float, ...] = (1.0, 2.0, 4.0, 2.0)
    period: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "curve", tuple(float(w) for w in self.curve))
        if not self.curve:
            raise ClusterError("Diurnal curve needs at least one segment")
        if any(weight < 0 for weight in self.curve):
            raise ClusterError("Diurnal curve weights must be non-negative")
        if sum(self.curve) <= 0:
            raise ClusterError("Diurnal curve needs a positive total intensity")
        if self.period <= 0:
            raise ClusterError(f"Diurnal period must be positive, got {self.period}")

    def sample(self, rng: random.Random, count: int) -> Iterable[float]:
        cumulative = [0.0]
        for weight in self.curve:
            cumulative.append(cumulative[-1] + weight)
        total = cumulative[-1]
        segment = self.period / len(self.curve)
        for _ in range(count):
            u = rng.uniform(0.0, total)
            index = min(bisect_right(cumulative, u) - 1, len(self.curve) - 1)
            weight = self.curve[index]
            fraction = (u - cumulative[index]) / weight if weight > 0 else 0.0
            yield (index + fraction) * segment


@dataclass(frozen=True)
class FlashCrowd(ArrivalProcess):
    """Baseline arrivals plus a decaying burst at a fixed instant.

    A fraction ``magnitude / (magnitude + 1)`` of the group belongs to the
    crowd and arrives at ``at`` plus an exponential delay of mean
    ``decay``; the rest is a Poisson(``rate``) baseline.  ``magnitude=3``
    therefore means the crowd is 3× the baseline population.
    """

    at: float = 0.05
    magnitude: float = 3.0
    decay: float = 0.02
    rate: float = 100.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ClusterError(f"FlashCrowd at must be non-negative, got {self.at}")
        if self.magnitude < 0:
            raise ClusterError(
                f"FlashCrowd magnitude must be non-negative, got {self.magnitude}"
            )
        if self.decay <= 0:
            raise ClusterError(f"FlashCrowd decay must be positive, got {self.decay}")
        if self.rate <= 0:
            raise ClusterError(f"FlashCrowd rate must be positive, got {self.rate}")

    def sample(self, rng: random.Random, count: int) -> Iterable[float]:
        crowd_share = self.magnitude / (self.magnitude + 1.0)
        baseline = 0.0
        for _ in range(count):
            if rng.random() < crowd_share:
                yield self.at + rng.expovariate(1.0 / self.decay)
            else:
                baseline += rng.expovariate(self.rate)
                yield baseline


@dataclass(frozen=True)
class ClientChurn(ArrivalProcess):
    """A churning population: joins gated by a bounded concurrent pool.

    Clients try to join as a Poisson(``join_rate``) stream, but only
    ``population`` of them (default: the steady state
    ``join_rate / leave_rate``) can be active at once; each active client's
    session lasts an exponential ``1 / leave_rate`` on average, and a
    departing client's slot admits the next joiner — so start offsets
    cluster into generational waves instead of a smooth ramp.
    """

    join_rate: float = 100.0
    leave_rate: float = 10.0
    population: int | None = None

    def __post_init__(self) -> None:
        if self.join_rate <= 0:
            raise ClusterError(
                f"ClientChurn join_rate must be positive, got {self.join_rate}"
            )
        if self.leave_rate <= 0:
            raise ClusterError(
                f"ClientChurn leave_rate must be positive, got {self.leave_rate}"
            )
        if self.population is not None and self.population < 1:
            raise ClusterError(
                f"ClientChurn population must be at least 1, got {self.population}"
            )

    def sample(self, rng: random.Random, count: int) -> Iterable[float]:
        pool = self.population
        if pool is None:
            pool = max(1, round(self.join_rate / self.leave_rate))
        joins: list[float] = []
        now = 0.0
        for index in range(count):
            now += rng.expovariate(self.join_rate)
            if index < pool:
                joined = now
            else:
                session = rng.expovariate(self.leave_rate)
                joined = max(now, joins[index - pool] + session)
            joins.append(joined)
            yield joined


def resolve_offsets(arrival: Any, count: int) -> list[float]:
    """Per-position start offsets for a ``count``-client group.

    The one shared resolver behind ``Scenario.clients(..., arrival=...)``
    and the cohort flow builder:

    * a float ``s`` staggers position *i* at ``i * s`` (the legacy form);
    * a callable maps the position to its offset;
    * an :class:`ArrivalProcess` draws the whole group's offsets from its
      seeded stream (position = arrival rank).

    Offsets must be non-negative; the same list feeds both the discrete
    representatives and the modeled flow mass, so cohort aggregation never
    shifts when anyone arrives.
    """
    if count < 0:
        raise ClusterError(f"arrival count must be non-negative, got {count}")
    if isinstance(arrival, ArrivalProcess):
        return arrival.offsets(count)
    if callable(arrival):
        offsets = [float(arrival(position)) for position in range(count)]
    else:
        step = float(arrival)
        if step < 0:
            raise ClusterError(f"arrival spacing must be non-negative, got {step}")
        offsets = [position * step for position in range(count)]
    for offset in offsets:
        if offset < 0:
            raise ClusterError(
                f"arrival offsets must be non-negative, got {offset}"
            )
    return offsets


def offsets_for_positions(arrival: Any, positions: Sequence[int]) -> list[float]:
    """The offsets a subset of group positions would get in the full group.

    Used by the legacy ``build_flow_offsets`` entry point: resolves enough
    of the group (up to the highest position) and indexes into it, so a
    flow's mass sees exactly the offsets its positions would have had in
    an all-discrete group.
    """
    if not positions:
        return []
    highest = max(positions)
    if highest < 0 or min(positions) < 0:
        raise ClusterError("group positions must be non-negative")
    resolved = resolve_offsets(arrival, highest + 1)
    return [resolved[position] for position in positions]
