"""``repro.traffic`` — traffic realism: open-loop arrivals, trace
record/replay, and seeded scenario fuzzing.

Three cooperating parts (ARCHITECTURE.md "Traffic model & replay"):

* :mod:`repro.traffic.arrivals` — the seeded :class:`ArrivalProcess`
  protocol (:class:`Poisson`, :class:`ParetoHeavyTail`, :class:`Diurnal`,
  :class:`FlashCrowd`, :class:`ClientChurn`) plus the one shared
  :func:`resolve_offsets` helper behind ``Scenario.clients(...,
  arrival=...)`` and the cohort flow builder;
* :mod:`repro.traffic.trace` — a versioned JSONL trace format
  (:class:`TraceWriter` / :class:`TraceReader`), :func:`record` to run a
  scenario while capturing its spec, per-call issue times and
  fault/rollout timeline events, and :func:`replay` to rebuild a Scenario
  whose report fingerprint is byte-identical to the recorded run;
* :mod:`repro.traffic.fuzz` — a Hypothesis-backed generator of random
  worlds × traffic shapes × fault schedules × rollout plans asserting the
  §6/§5.7 invariants and replay byte-identity, with failing scenarios
  minimised and serialised as replayable traces.

The trace and fuzz layers sit *above* the cluster package (they build
Scenarios), while ``repro.cluster`` itself only needs the arrivals layer —
so this ``__init__`` imports arrivals eagerly and loads the heavier
submodules lazily, keeping the import graph acyclic.
"""

from repro.traffic.arrivals import (
    ArrivalProcess,
    ClientChurn,
    Diurnal,
    FlashCrowd,
    ParetoHeavyTail,
    Poisson,
    resolve_offsets,
)

__all__ = [
    "ArrivalProcess",
    "Poisson",
    "ParetoHeavyTail",
    "Diurnal",
    "FlashCrowd",
    "ClientChurn",
    "resolve_offsets",
    "TraceReader",
    "TraceWriter",
    "record",
    "replay",
    "TRACE_FORMAT",
]

#: Names served lazily from repro.traffic.trace (PEP 562): the trace layer
#: imports the cluster package, which imports the arrivals layer — eager
#: re-export here would close that loop during interpreter start-up.
_TRACE_EXPORTS = ("TraceReader", "TraceWriter", "record", "replay", "TRACE_FORMAT")


def __getattr__(name: str):
    if name in _TRACE_EXPORTS:
        from repro.traffic import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
