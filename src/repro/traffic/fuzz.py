"""Seeded scenario fuzzing: random worlds × traffic × faults × rollouts.

The generator draws a *case* — a small JSON-able dict describing a world
(servers, cores, replica counts), a traffic shape (one of the seeded
:mod:`repro.traffic.arrivals` processes or plain spacing), a fault
schedule (crash/restart, partition/heal) and an optional breaking rollout
plan — builds the Scenario, runs it **while recording a trace**, and
asserts the reproduction's load-bearing invariants:

* **§6 recency** — ``report.total_recency_violations == 0``: no client
  ever observes an interface version older than one it already saw,
  across stale faults, failover and mid-run rollouts.
* **No silent wrong answers** — the only faults clients see are the §5.7
  stale faults (the *visible* signal) and transport-level abandons after
  the retry budget; ``other_faults`` / ``not_initialized_faults`` stay 0.
* **Call conservation** — every planned call ends as exactly one of
  completed-with-outcome or abandoned; none vanish.
* **Deterministic replay** — ``replay(trace)`` rebuilt from the recorded
  spec reruns to a byte-identical ``ClusterReport.fingerprint()``.

Failures are minimised by Hypothesis's shrinker and the shrunken case's
trace is left at ``$REPRO_FUZZ_ARTIFACTS/minimized-failure.jsonl`` (the
CI fuzz job uploads it), so any red run ships a replayable reproduction.
The failing case is then re-run with :mod:`repro.obs` armed, leaving its
span log (``minimized-failure.spans.jsonl``) and any flight-recorder
``flight-*.json`` dumps beside the trace — the causal post-mortem, not
just the reproduction::

    python -m pytest tests/traffic/test_fuzz.py --hypothesis-seed=0

Everything is derandomised by default: the same seed explores the same
~25 worlds in the same order on every machine.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Mapping

from repro.cluster.cohort import CohortModel
from repro.cluster.scenario import Scenario, op
from repro.core.sde import SDEConfig
from repro.evolve import canary, rolling, upgrade
from repro.faults import RetryPolicy, crash, heal, partition, restart
from repro.rmitypes import STRING
from repro.traffic.arrivals import (
    ClientChurn,
    Diurnal,
    FlashCrowd,
    ParetoHeavyTail,
    Poisson,
)
from repro.traffic.trace import TraceReader, echo_body, record, replay

#: Where a failing (shrunken) case's trace is copied for post-mortem replay.
ARTIFACTS_ENV = "REPRO_FUZZ_ARTIFACTS"
MINIMIZED_TRACE_NAME = "minimized-failure.jsonl"
#: Span log of the failing case's diagnostic re-run (observability on).
MINIMIZED_SPANS_NAME = "minimized-failure.spans.jsonl"
#: Latency-attribution profile of the diagnostic re-run (where the failing
#: case's simulated time went, per component/service/tier).
MINIMIZED_PROFILE_NAME = "minimized-failure.profile.json"


# -- the case space ------------------------------------------------------------

#: Traffic shapes by name; every shape keeps the whole fleet inside a
#: ~0.5-virtual-second arrival window so fuzz runs stay bounded.
_ARRIVALS = {
    "spacing": lambda seed: 0.0005,
    "poisson": lambda seed: Poisson(rate=250.0, seed=seed),
    "pareto": lambda seed: ParetoHeavyTail(alpha=1.8, scale=0.002, seed=seed),
    "diurnal": lambda seed: Diurnal(curve=(1.0, 3.0, 1.0, 2.0), period=0.2, seed=seed),
    "flash_crowd": lambda seed: FlashCrowd(
        at=0.03, magnitude=3.0, decay=0.01, rate=200.0, seed=seed
    ),
    "churn": lambda seed: ClientChurn(join_rate=300.0, leave_rate=150.0, seed=seed),
}


def case_strategy():
    """A Hypothesis strategy over fuzz cases (plain JSON-able dicts)."""
    from hypothesis import strategies as st

    grid_time = st.sampled_from([0.01, 0.02, 0.03, 0.04, 0.05])
    return st.fixed_dictionaries(
        {
            "servers": st.integers(min_value=2, max_value=3),
            "cores": st.sampled_from([None, 1, 2]),
            "soap_replicas": st.integers(min_value=1, max_value=3),
            "corba_replicas": st.integers(min_value=1, max_value=3),
            "clients": st.integers(min_value=6, max_value=20),
            "calls": st.integers(min_value=1, max_value=3),
            "soap_weight": st.sampled_from([0.25, 0.5, 0.75]),
            "think_time": st.sampled_from([0.0, 0.01]),
            "arrival": st.sampled_from(sorted(_ARRIVALS)),
            "arrival_seed": st.integers(min_value=0, max_value=3),
            "stale_every": st.sampled_from([None, 3]),
            "max_attempts": st.integers(min_value=2, max_value=4),
            "cohort": st.booleans(),
            "fault_crash": st.booleans(),
            "fault_partition": st.booleans(),
            "crash_at": grid_time,
            "partition_at": grid_time,
            "rollout": st.sampled_from([None, "rolling", "canary"]),
            "rollout_at": st.sampled_from([0.03, 0.05, 0.08]),
        }
    )


def build_scenario(case: Mapping[str, Any]) -> Scenario:
    """Materialise one drawn case as a runnable (and traceable) Scenario."""
    echo = op("echo", (("message", STRING),), STRING, body=echo_body)
    arrival = _ARRIVALS[case["arrival"]](case["arrival_seed"])
    retry = RetryPolicy(max_attempts=case["max_attempts"], timeout=0.08, backoff=0.005)
    count = case["clients"]
    cohort = None
    if case["cohort"]:
        # Lift the drawn fleet to cohort scale: the drawn clients stay
        # discrete representatives, four times their number rides as flows.
        cohort = CohortModel(representatives=count)
        count = count * 5
    scenario = (
        Scenario(
            name=f"fuzz-{case['arrival']}",
            sde_config=SDEConfig(generation_cost=0.02),
        )
        .servers(case["servers"], cores=case["cores"])
        .service("EchoSoap", [echo], technology="soap", replicas=case["soap_replicas"])
        .service(
            "EchoCorba", [echo], technology="corba", replicas=case["corba_replicas"]
        )
        .clients(
            count,
            protocol_mix={
                "soap": case["soap_weight"],
                "corba": round(1.0 - case["soap_weight"], 2),
            },
            calls=case["calls"],
            operation="echo",
            arguments=("hello fuzz",),
            think_time=case["think_time"],
            arrival=arrival,
            stale_every=case["stale_every"],
            retry=retry,
            cohort=cohort,
        )
    )
    if case["fault_crash"]:
        scenario.at(case["crash_at"], crash("server-1"))
        scenario.at(case["crash_at"] + 0.06, restart("server-1"))
    if case["fault_partition"]:
        victim = f"server-{case['servers']}"
        scenario.at(case["partition_at"], partition(victim))
        scenario.at(case["partition_at"] + 0.05, heal(victim))
    if case["rollout"] is not None:
        echo_v2 = op("echo_v2", (("message", STRING),), STRING, body=echo_body)
        change = upgrade(add=[echo_v2], remove=["echo"], successors={"echo": "echo_v2"})
        plan = (
            rolling("EchoSoap", change, batch_size=1, drain=0.005)
            if case["rollout"] == "rolling"
            else canary("EchoSoap", change, fraction=0.5, promote_after=0.02)
        )
        scenario.at(case["rollout_at"], plan)
    return scenario


# -- the invariants ------------------------------------------------------------


def check_report(case: Mapping[str, Any], report) -> list[str]:
    """The §6 / no-silent-wrong-answer / conservation invariants."""
    violations: list[str] = []
    if report.total_recency_violations != 0:
        violations.append(
            f"§6 recency violated: {report.total_recency_violations} observations "
            "of an interface version older than one already seen"
        )
    for client in report.clients:
        if client.other_faults:
            violations.append(
                f"{client.name}: {client.other_faults} unclassified faults "
                "(silent wrong answers / protocol errors)"
            )
        if client.not_initialized_faults:
            violations.append(
                f"{client.name}: {client.not_initialized_faults} "
                "server-not-initialized faults"
            )
        outcomes = (
            client.successes
            + client.stale_faults
            + client.not_initialized_faults
            + client.other_faults
        )
        if outcomes != len(client.rtts):
            violations.append(
                f"{client.name}: {outcomes} classified outcomes for "
                f"{len(client.rtts)} recorded RTTs"
            )
        if len(client.rtts) + client.abandoned_calls != case["calls"]:
            violations.append(
                f"{client.name}: {len(client.rtts)} completed + "
                f"{client.abandoned_calls} abandoned != {case['calls']} planned calls"
            )
    return violations


def run_case(case: Mapping[str, Any], artifacts: str | Path | None = None) -> None:
    """Record one case, check every invariant, verify byte-exact replay.

    On violation the trace is copied to the artifacts directory (argument,
    ``$REPRO_FUZZ_ARTIFACTS``, or ``./fuzz-artifacts``) and an
    ``AssertionError`` is raised — under Hypothesis the shrinker then
    minimises the case, so the trace left behind reproduces the *smallest*
    failing world.
    """
    workdir = Path(tempfile.mkdtemp(prefix="repro-fuzz-"))
    trace_path = workdir / "trace.jsonl"
    try:
        report, reader = record(build_scenario(case), trace_path)
        violations = check_report(case, report)
        replayed = replay(reader).run(until=reader.until)
        if replayed.fingerprint() != report.fingerprint():
            violations.append(
                "deterministic replay violated: replayed fingerprint diverges "
                "from the recorded run"
            )
        if violations:
            kept = _keep_artifact(trace_path, artifacts)
            _keep_flight_recording(case, kept.parent)
            raise AssertionError(
                "fuzz case violated invariants:\n- "
                + "\n- ".join(violations)
                + f"\ncase: {dict(case)}\nreplayable trace: {kept}"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _keep_artifact(trace_path: Path, artifacts: str | Path | None) -> Path:
    directory = Path(
        artifacts
        if artifacts is not None
        else os.environ.get(ARTIFACTS_ENV, "fuzz-artifacts")
    )
    directory.mkdir(parents=True, exist_ok=True)
    destination = directory / MINIMIZED_TRACE_NAME
    shutil.copyfile(trace_path, destination)
    return destination


def _keep_flight_recording(case: Mapping[str, Any], directory: Path) -> None:
    """Re-run the failing case with the flight recorder armed.

    The minimized trace alone replays the failure; this diagnostic re-run
    adds the *causal* picture to the same artifacts directory — the full
    span log (``minimized-failure.spans.jsonl``), a latency-attribution
    profile of the failing run (``minimized-failure.profile.json``, where
    each call's simulated time went by component), plus any
    ``flight-*.json`` dumps the invariant trips produced (a §6 recency
    violation or a silent wrong answer trips the recorder at the exact
    violating call, naming its client, replica and version tier).  Purely
    best-effort: a diagnostics crash must never mask the primary failure.
    """
    from repro.obs import ObsConfig, Observability

    obs = Observability(ObsConfig(dump_dir=directory))
    try:
        build_scenario(case).run(obs=obs)
        obs.export_jsonl(directory / MINIMIZED_SPANS_NAME)
        obs.export_profile(directory / MINIMIZED_PROFILE_NAME)
    except Exception:  # pragma: no cover - diagnostics are best-effort
        return


# -- the driver ----------------------------------------------------------------


def fuzz(
    max_examples: int = 25,
    artifacts: str | Path | None = None,
    derandomize: bool = True,
) -> None:
    """Explore ``max_examples`` random worlds; raise on the first violation.

    Derandomised by default, so every machine walks the same case
    sequence.  This is what the CI fuzz job runs (via the pytest wrapper
    in ``tests/traffic/test_fuzz.py``); it is also directly callable::

        python -c "from repro.traffic.fuzz import fuzz; fuzz()"
    """
    from hypothesis import HealthCheck, given, settings

    @settings(
        max_examples=max_examples,
        derandomize=derandomize,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(case=case_strategy())
    def explore(case: Mapping[str, Any]) -> None:
        run_case(case, artifacts=artifacts)

    explore()


def replay_artifact(path: str | Path):
    """Re-run a failure trace left by the fuzzer; returns its ClusterReport."""
    reader = TraceReader(path)
    return replay(reader).run(until=reader.until)
