"""Observability overhead: the fault drill with and without ``obs``.

Two costs matter for :mod:`repro.obs`:

* **disabled** — every hook site must reduce to one module-attribute load
  plus an ``is not None`` test, so an unobserved drill runs at the same
  events-per-second the compiled-core gate tracks;
* **enabled** — full span collection, in-band context propagation on both
  wire formats and the metrics sampler should tax the drill by a bounded,
  tracked percentage, not a multiple.

The benchmark times the obs-off drill (the comparable, gated number) and
hand-times the identical drill with observability on, recording
``events_per_second_obs_off`` / ``events_per_second_obs_on`` and the
wall-clock ``obs_overhead_pct`` that ``run_all.py`` prints as the
observability-overhead column.  Span and sample counts are attached as
``deterministic_*`` metrics, so a hook-site change that silently doubles
span volume corroborates a wall-clock regression.

``REPRO_BENCH_QUICK=1`` (set by ``run_all.py --quick``) shrinks the fleet.

Run with:  pytest benchmarks/bench_observability.py --benchmark-only -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro._backend import backend_name
from repro.cluster.presets import (
    FAULT_DRILL_CLIENTS,
    FAULT_DRILL_CLIENTS_QUICK,
    fault_drill_scenario,
)
from repro.obs import Observability

_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

CLIENTS = FAULT_DRILL_CLIENTS_QUICK if _QUICK else FAULT_DRILL_CLIENTS
_ROUNDS = 1 if _QUICK else 3


@pytest.mark.benchmark(group="observability")
def test_fault_drill_observability_overhead(benchmark):
    """Fault drill obs-off (benchmarked) vs obs-on (hand-timed) overhead."""

    def run_plain():
        return fault_drill_scenario(CLIENTS).run()

    plain = benchmark.pedantic(run_plain, rounds=_ROUNDS, iterations=1)
    assert plain.total_recency_violations == 0
    assert plain.metrics is None

    # Hand-time the observed runs: pytest-benchmark owns one callable per
    # test, and the overhead ratio needs both sides from the same process.
    observed_seconds = []
    observed_reports = []
    observabilities = []
    for _ in range(_ROUNDS):
        obs = Observability()
        scenario = fault_drill_scenario(CLIENTS)
        started = time.perf_counter()
        observed_reports.append(scenario.run(obs=obs))
        observed_seconds.append(time.perf_counter() - started)
        observabilities.append(obs)
    observed = observed_reports[0]
    obs = observabilities[0]

    # The observed drill really collected everything, deterministically.
    assert obs.tracer.finished_count > 0
    assert observed.metrics is not None and len(observed.metrics.times) > 0
    assert {o.tracer.finished_count for o in observabilities} == {
        obs.tracer.finished_count
    }
    assert {o.span_fingerprint() for o in observabilities} == {obs.span_fingerprint()}

    plain_mean = benchmark.stats.stats.mean
    observed_mean = sum(observed_seconds) / len(observed_seconds)
    overhead_pct = (observed_mean / plain_mean - 1.0) * 100 if plain_mean > 0 else 0.0

    benchmark.extra_info["backend"] = backend_name()
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["events_per_second_obs_off"] = (
        round(plain.events_dispatched / plain_mean) if plain_mean > 0 else 0
    )
    benchmark.extra_info["events_per_second_obs_on"] = (
        round(observed.events_dispatched / observed_mean) if observed_mean > 0 else 0
    )
    benchmark.extra_info["obs_overhead_pct"] = round(overhead_pct, 1)
    benchmark.extra_info["simulated_duration_s"] = round(plain.duration, 5)
    benchmark.extra_info["events_dispatched"] = plain.events_dispatched
    benchmark.extra_info["deterministic_spans_finished"] = obs.tracer.finished_count
    benchmark.extra_info["deterministic_metrics_samples"] = len(
        observed.metrics.times
    )
    benchmark.extra_info["deterministic_observed_events"] = observed.events_dispatched

    # Per-component mean simulated latency (the run-diff attribution blob):
    # run_all.py and `analyze diff --bench` use it to name the dominant
    # regressed component when this benchmark's wall clock is flagged.
    profile = obs.profile()
    benchmark.extra_info["obs_profile"] = profile.component_means()
    benchmark.extra_info["deterministic_attributed_calls"] = profile.call_count
