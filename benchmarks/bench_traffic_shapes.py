"""Open-loop traffic shapes over the fault drill (:mod:`repro.traffic`).

The 4-server × 256-client drill rerun under two seeded arrival processes —
Poisson open-loop arrivals and a flash crowd dumping three quarters of the
fleet onto the servers at one instant — instead of the historical uniform
stagger.  The benchmark records the cost of *simulating* each shape and a
``calls_per_sec`` headline (completed simulated calls per wall-clock
second of simulation), which ``run_all.py`` surfaces in its summary.

Byte-determinism is asserted the strongest way the report allows: two
fresh in-process runs must agree on the full
:meth:`~repro.cluster.report.ClusterReport.fingerprint` — every RTT,
routing decision, outage and rollout wave, bit for bit — because the
arrival processes are pure functions of their seed (the invariant the
trace record/replay layer relies on).

``REPRO_BENCH_QUICK=1`` (set by ``run_all.py --quick``) shrinks the fleet.

Run with:  pytest benchmarks/bench_traffic_shapes.py --benchmark-only -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cluster.presets import (
    FAULT_DRILL_CLIENTS,
    FAULT_DRILL_CLIENTS_QUICK,
    FAULT_DRILL_SERVERS,
    fault_drill_scenario,
)
from repro.traffic import FlashCrowd, Poisson

_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

CLIENTS = FAULT_DRILL_CLIENTS_QUICK if _QUICK else FAULT_DRILL_CLIENTS

#: Arrival window of the historical drill (256 clients × 0.0005 s stagger);
#: both shapes aim the same offered-load window so RTTs stay comparable.
_WINDOW_S = FAULT_DRILL_CLIENTS * 0.0005

#: The two shapes under test, by benchmark id.
SHAPES = {
    "poisson": Poisson(rate=CLIENTS / _WINDOW_S, seed=42),
    "flash_crowd": FlashCrowd(
        at=0.05, magnitude=3.0, decay=0.01, rate=CLIENTS / _WINDOW_S, seed=42
    ),
}


@pytest.mark.benchmark(group="traffic-shapes")
@pytest.mark.parametrize("shape", sorted(SHAPES), ids=sorted(SHAPES))
def test_traffic_shape_drill(benchmark, shape):
    """The 4×256 drill under a seeded open-loop arrival shape, deterministic."""
    arrival = SHAPES[shape]

    def run_twice():
        started = time.perf_counter()
        reports = (
            fault_drill_scenario(CLIENTS, arrival=arrival).run(),
            fault_drill_scenario(CLIENTS, arrival=arrival).run(),
        )
        return reports + (time.perf_counter() - started,)

    first, second, elapsed = benchmark.pedantic(run_twice, rounds=1, iterations=1)

    # Byte-deterministic: the FULL report fingerprint — every RTT, replica
    # choice, outage and event count — is identical across fresh runs.
    assert first.fingerprint() == second.fingerprint()
    assert first.all_rtts == second.all_rtts
    assert first.events_dispatched == second.events_dispatched

    # The drill's acceptance invariants hold under open-loop arrivals too.
    assert first.total_calls + first.total_abandoned_calls == CLIENTS * 4
    assert first.total_successes == first.total_calls
    assert first.total_recency_violations == 0

    completed = first.total_calls + second.total_calls
    calls_per_sec = completed / elapsed if elapsed > 0 else 0.0

    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["servers"] = FAULT_DRILL_SERVERS
    benchmark.extra_info["arrival"] = repr(arrival)
    benchmark.extra_info["calls_per_sec"] = round(calls_per_sec, 1)
    benchmark.extra_info["simulated_duration_s"] = round(first.duration, 5)
    benchmark.extra_info["events_dispatched"] = first.events_dispatched
    benchmark.extra_info["mean_simulated_rtt_s"] = round(first.mean_rtt, 5)
    percentiles = first.rtt_percentiles
    benchmark.extra_info["rtt_p50_s"] = round(percentiles["p50"], 6)
    benchmark.extra_info["rtt_p95_s"] = round(percentiles["p95"], 6)
    benchmark.extra_info["rtt_p99_s"] = round(percentiles["p99"], 6)
    benchmark.extra_info["deterministic_failed_attempts"] = first.total_failed_attempts
    benchmark.extra_info["deterministic_retried_calls"] = first.total_retried_calls
    benchmark.extra_info["deterministic_abandoned_calls"] = first.total_abandoned_calls
    benchmark.extra_info["recency_violations"] = first.total_recency_violations
