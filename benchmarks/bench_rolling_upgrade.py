"""The rolling-upgrade acceptance benchmark for :mod:`repro.evolve`.

A 4-server, 256-client mixed SOAP/CORBA fleet — two replicated echo
services — rides through a *breaking* rolling upgrade of both services
(``echo`` renamed to ``echo_v2``, replica by replica, with a drain between
waves) while every client keeps calling.  The benchmark records the cost
of *simulating* the drill; the simulated quantities (per-version call
counts, wave durations, stale-fault rate inside the rollout window,
rebinds, RTT percentiles) go to ``extra_info``, and the run is asserted
byte-deterministic: two fresh seeded runs produce identical per-call RTT
sequences, routing and event counts.

The §6/§5.7 contract rides along, in both directions:

* a *compatible* upgrade (operations added) causes **zero** stale faults
  and zero recency violations — version-aware routing keeps every
  client's observed published version monotone while replicas diverge;
* the *breaking* upgrade is never silently wrong: every affected call
  surfaces as an explicit stale fault followed by a rebind (stub refresh
  + successor operation), with zero unclassified faults.

A second benchmark crashes a server mid-rollout: the wave targeting its
replica is deferred, the fleet fails over, and after the restart the
rollout deterministically *resumes* and completes.

``REPRO_BENCH_QUICK=1`` (set by ``run_all.py --quick``) shrinks the fleet.

Run with:  pytest benchmarks/bench_rolling_upgrade.py --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import Scenario, op, rolling, upgrade
from repro.core.sde import SDEConfig
from repro.evolve import CLASS_BREAKING
from repro.faults import RetryPolicy, crash, restart
from repro.rmitypes import STRING

_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: The acceptance floor is 256 clients; quick CI grids run a quarter of it.
CLIENTS = 64 if _QUICK else 256

ECHO = op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)
ECHO_V2 = op(
    "echo_v2", (("message", STRING),), STRING, body=lambda _self, m: m + "!"
)
BREAKING = upgrade(add=[ECHO_V2], remove=["echo"], successors={"echo": "echo_v2"})


def rolling_upgrade_scenario(clients: int = CLIENTS) -> Scenario:
    """4 servers × mixed fleet, breaking rolling upgrades on both services."""
    return (
        Scenario(name="rolling-upgrade", sde_config=SDEConfig(generation_cost=0.02))
        .servers(4)
        .service("EchoSoap", [ECHO], technology="soap", replicas=2)
        .service("EchoCorba", [ECHO], technology="corba", replicas=2)
        .clients(
            clients,
            protocol_mix={"soap": 0.5, "corba": 0.5},
            calls=6,
            operation="echo",
            arguments=("hello fleet",),
            think_time=0.02,
            arrival=0.0005,
        )
        .at(0.020, rolling("EchoSoap", BREAKING, batch_size=1, drain=0.03))
        .at(0.025, rolling("EchoCorba", BREAKING, batch_size=1, drain=0.03))
    )


def crash_mid_rollout_scenario(clients: int = CLIENTS) -> Scenario:
    """The same drill with a crash landing before the first wave's node."""
    retry = RetryPolicy(max_attempts=4, timeout=0.08, backoff=0.005)
    return (
        Scenario(name="crash-mid-rollout", sde_config=SDEConfig(generation_cost=0.02))
        .servers(4)
        .service("EchoSoap", [ECHO], technology="soap", replicas=2)
        .service("EchoCorba", [ECHO], technology="corba", replicas=2)
        .clients(
            clients,
            protocol_mix={"soap": 0.5, "corba": 0.5},
            calls=8,
            operation="echo",
            arguments=("hello fleet",),
            think_time=0.02,
            arrival=0.0005,
            retry=retry,
        )
        .at(0.015, crash("server-1"))  # hosts EchoSoap replica 0
        .at(0.020, rolling("EchoSoap", BREAKING, batch_size=1, drain=0.03))
        .at(0.025, rolling("EchoCorba", BREAKING, batch_size=1, drain=0.03))
        .at(0.150, restart("server-1"))
    )


def _record_common(benchmark, report) -> None:
    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["servers"] = 4
    benchmark.extra_info["simulated_duration_s"] = round(report.duration, 5)
    benchmark.extra_info["events_dispatched"] = report.events_dispatched
    benchmark.extra_info["mean_simulated_rtt_s"] = round(report.mean_rtt, 5)
    percentiles = report.rtt_percentiles
    benchmark.extra_info["rtt_p50_s"] = round(percentiles["p50"], 6)
    benchmark.extra_info["rtt_p95_s"] = round(percentiles["p95"], 6)
    benchmark.extra_info["rtt_p99_s"] = round(percentiles["p99"], 6)
    benchmark.extra_info["deterministic_stale_faults"] = report.total_stale_faults
    benchmark.extra_info["deterministic_rebinds"] = report.total_rebinds
    benchmark.extra_info["recency_violations"] = report.total_recency_violations
    for rollout in report.rollouts:
        prefix = f"rollout_{rollout.service}"
        benchmark.extra_info[f"{prefix}_duration_s"] = round(rollout.duration, 5)
        benchmark.extra_info[f"{prefix}_waves"] = len(rollout.waves)
        benchmark.extra_info[f"{prefix}_stale_fault_rate"] = round(
            rollout.stale_fault_rate, 5
        )
    for service in report.services:
        benchmark.extra_info[f"calls_by_version_{service.name}"] = {
            str(version): calls
            for version, calls in service.calls_by_version.items()
        }


@pytest.mark.benchmark(group="rolling-upgrade")
def test_rolling_breaking_upgrade_4x256_mixed(benchmark):
    """4 servers × 256 mixed clients through a breaking rolling upgrade."""

    def run_twice():
        return rolling_upgrade_scenario().run(), rolling_upgrade_scenario().run()

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)

    # Byte-deterministic: identical RTT sequences, routing and event counts.
    assert first.all_rtts == second.all_rtts
    assert first.duration == second.duration
    assert first.events_dispatched == second.events_dispatched
    assert [c.replica_sequence for c in first.clients] == [
        c.replica_sequence for c in second.clients
    ]

    # Both rollouts completed and were classified breaking from the
    # published documents (WSDL and IDL, uniformly).
    assert len(first.rollouts) == 2
    for rollout in first.rollouts:
        assert rollout.completed and not rollout.aborted
        assert rollout.classification == CLASS_BREAKING
        assert len(rollout.waves) == 2

    # Never a silently wrong answer: every affected call is an explicit
    # stale fault followed by a rebind; everything else succeeded.
    assert first.total_calls == CLIENTS * 6
    assert first.total_stale_faults > 0
    assert first.total_rebinds == first.total_stale_faults
    assert first.total_other_faults == 0
    assert first.total_successes + first.total_stale_faults == first.total_calls
    # The §6 recency guarantee held across deliberately divergent replica
    # versions: version-aware routing kept every client's view monotone.
    assert first.total_recency_violations == 0
    # Mixed-version traffic is visible per service.
    for name in ("EchoSoap", "EchoCorba"):
        assert len(first.service(name).calls_by_version) >= 2

    _record_common(benchmark, first)


@pytest.mark.benchmark(group="rolling-upgrade")
def test_crash_mid_rollout_resumes_deterministically(benchmark):
    """A crash defers one wave; the rollout resumes after restart."""

    def run_twice():
        return crash_mid_rollout_scenario().run(), crash_mid_rollout_scenario().run()

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)

    assert first.all_rtts == second.all_rtts
    assert first.duration == second.duration
    assert first.events_dispatched == second.events_dispatched

    soap_rollout = first.rollouts_for("EchoSoap")[0]
    assert soap_rollout.completed
    assert soap_rollout.deferred_resumes == 1  # server-1's replica resumed
    corba_rollout = first.rollouts_for("EchoCorba")[0]
    assert corba_rollout.completed and corba_rollout.deferred_resumes == 0

    # Every replica of both services ended on the upgraded interface.
    for name in ("EchoSoap", "EchoCorba"):
        for replica in first.service(name).replicas:
            assert replica.interface_version >= 3

    # The failover + upgrade contract held: no silent wrong answers, no
    # recency violations, failover really happened.
    assert first.total_other_faults == 0
    assert first.total_recency_violations == 0
    assert first.total_failed_attempts > 0
    assert first.total_rebinds == first.total_stale_faults > 0

    _record_common(benchmark, first)
    crashed = [node for node in first.nodes if node.downtime_s > 0]
    assert [node.name for node in crashed] == ["server-1"]
    benchmark.extra_info["server1_downtime_s"] = round(crashed[0].downtime_s, 5)
    benchmark.extra_info["deterministic_failed_attempts"] = first.total_failed_attempts
    benchmark.extra_info["deterministic_retried_calls"] = first.total_retried_calls
