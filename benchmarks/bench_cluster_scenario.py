"""The acceptance scenario for the declarative Scenario API.

A 4-server, 256-client mixed SOAP/CORBA world — two replicated echo
services behind round-robin routing, one mid-run edit+publish on the SOAP
service — expressed in ≤ 20 lines of :mod:`repro.cluster` code (see
:func:`mixed_cluster_scenario`).  The benchmark records the cost of
*simulating* the scenario; the simulated quantities (per-service RTT,
publication counts, events dispatched) are attached to ``extra_info``,
and the run is asserted deterministic: two fresh runs produce identical
per-call RTT sequences.

``REPRO_BENCH_QUICK=1`` (set by ``run_all.py --quick``) shrinks the fleet.

Run with:  pytest benchmarks/bench_cluster_scenario.py --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import Scenario, edit, op, publish
from repro.core.sde import SDEConfig
from repro.rmitypes import STRING

_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: The acceptance floor is 256 clients; quick CI grids run a quarter of it.
CLIENTS = 64 if _QUICK else 256


def mixed_cluster_scenario(clients: int = CLIENTS) -> Scenario:
    """The whole world in one declarative expression (≤ 20 lines)."""
    echo = op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)
    return (
        Scenario(name="mixed-cluster", sde_config=SDEConfig(generation_cost=0.02))
        .servers(4)
        .service("EchoSoap", [echo], technology="soap", replicas=2)
        .service("EchoCorba", [echo], technology="corba", replicas=2)
        .clients(
            clients,
            protocol_mix={"soap": 0.5, "corba": 0.5},
            calls=3,
            operation="echo",
            arguments=("hello fleet",),
            think_time=0.02,
        )
        .at(0.02, edit("EchoSoap", op("added_mid_run")))
        .at(0.04, publish("EchoSoap"))
    )


@pytest.mark.benchmark(group="cluster-scenario")
def test_mixed_cluster_scenario_4x256(benchmark):
    """4 servers × 256 mixed clients, one mid-run edit+publish, deterministic."""

    def run_twice():
        return mixed_cluster_scenario().run(), mixed_cluster_scenario().run()

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)

    # Deterministic: identical ClusterReport RTT sequences across two runs.
    assert first.all_rtts == second.all_rtts
    assert first.duration == second.duration
    assert first.events_dispatched == second.events_dispatched

    assert first.total_calls == CLIENTS * 3
    assert first.total_successes == first.total_calls
    # The mid-run publication landed on both SOAP replicas while the fleet ran.
    assert first.service("EchoSoap").publications >= 2
    assert first.service("EchoSoap").interface_version >= 3
    # Every replica of both services carried traffic.
    for service in first.services:
        assert all(replica.calls_routed > 0 for replica in service.replicas)

    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["servers"] = 4
    benchmark.extra_info["simulated_duration_s"] = round(first.duration, 5)
    benchmark.extra_info["events_dispatched"] = first.events_dispatched
    benchmark.extra_info["mean_simulated_rtt_s"] = round(first.mean_rtt, 5)
    percentiles = first.rtt_percentiles
    benchmark.extra_info["rtt_p50_s"] = round(percentiles["p50"], 6)
    benchmark.extra_info["rtt_p95_s"] = round(percentiles["p95"], 6)
    benchmark.extra_info["rtt_p99_s"] = round(percentiles["p99"], 6)
    for service in first.services:
        rtts = first.rtts_for(service.name)
        benchmark.extra_info[f"mean_simulated_rtt_{service.technology}_s"] = round(
            sum(rtts) / len(rtts), 5
        )
    benchmark.extra_info["soap_publications_mid_run"] = first.service(
        "EchoSoap"
    ).publications
