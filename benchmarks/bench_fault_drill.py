"""The fault-drill acceptance benchmark for :mod:`repro.faults`.

A 4-server, 256-client mixed SOAP/CORBA fleet — two replicated echo
services, failover retry policy on every client — survives a mid-run
crash, a partition that later heals, and a restart, while a developer
edits and republishes one service.  The benchmark records the cost of
*simulating* the drill; the simulated quantities (availability metrics,
RTT percentiles, per-node downtime, events dispatched) go to
``extra_info``, and the run is asserted byte-deterministic: two fresh
seeded runs produce identical per-call RTT sequences and event counts.

The central §6 assertion rides along: across crash, partition and
failover, no client ever observes a published interface older than one it
already saw (``total_recency_violations == 0``).

``REPRO_BENCH_QUICK=1`` (set by ``run_all.py --quick``) shrinks the fleet.

Run with:  pytest benchmarks/bench_fault_drill.py --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.cluster.presets import (
    FAULT_DRILL_CLIENTS,
    FAULT_DRILL_CLIENTS_QUICK,
    fault_drill_scenario,
)

_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: The acceptance floor is 256 clients; quick CI grids run a quarter of it.
CLIENTS = FAULT_DRILL_CLIENTS_QUICK if _QUICK else FAULT_DRILL_CLIENTS


@pytest.mark.benchmark(group="fault-drill")
def test_fault_drill_4x256_mixed(benchmark):
    """4 servers × 256 mixed clients through a crash + partition, deterministic."""

    def run_twice():
        return (
            fault_drill_scenario(CLIENTS).run(),
            fault_drill_scenario(CLIENTS).run(),
        )

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)

    # Byte-deterministic: identical RTT sequences, routing and event counts.
    assert first.all_rtts == second.all_rtts
    assert first.duration == second.duration
    assert first.events_dispatched == second.events_dispatched
    assert [c.replica_sequence for c in first.clients] == [
        c.replica_sequence for c in second.clients
    ]

    # Every call completed despite the faults, and failover really happened.
    assert first.total_calls + first.total_abandoned_calls == CLIENTS * 4
    assert first.total_successes == first.total_calls
    assert first.total_failed_attempts > 0
    assert first.total_retried_calls > 0
    # The §6 recency guarantee held across crash, partition and failover.
    assert first.total_recency_violations == 0
    # Availability accounting: exactly one node was ever down.
    crashed = [node for node in first.nodes if node.downtime_s > 0]
    assert [node.name for node in crashed] == ["server-1"]
    assert crashed[0].outages == 1

    benchmark.extra_info["clients"] = CLIENTS
    benchmark.extra_info["servers"] = 4
    benchmark.extra_info["simulated_duration_s"] = round(first.duration, 5)
    benchmark.extra_info["events_dispatched"] = first.events_dispatched
    benchmark.extra_info["mean_simulated_rtt_s"] = round(first.mean_rtt, 5)
    percentiles = first.rtt_percentiles
    benchmark.extra_info["rtt_p50_s"] = round(percentiles["p50"], 6)
    benchmark.extra_info["rtt_p95_s"] = round(percentiles["p95"], 6)
    benchmark.extra_info["rtt_p99_s"] = round(percentiles["p99"], 6)
    benchmark.extra_info["deterministic_failed_attempts"] = first.total_failed_attempts
    benchmark.extra_info["deterministic_retried_calls"] = first.total_retried_calls
    benchmark.extra_info["deterministic_abandoned_calls"] = first.total_abandoned_calls
    benchmark.extra_info["recency_violations"] = first.total_recency_violations
    benchmark.extra_info["server1_downtime_s"] = round(crashed[0].downtime_s, 5)
    if crashed[0].recovery_latency_s is not None:
        benchmark.extra_info["server1_recovery_latency_s"] = round(
            crashed[0].recovery_latency_s, 5
        )
