"""E8 — Multi-client scale-out over the declarative Scenario API.

Drives N concurrent CDE-style clients (each its own simulated host with a
persistent keep-alive connection) against one SDE server for both
middlewares, scaling the fleet 1 → 512.  Every configuration is one
``repro.cluster.Scenario`` built by ``repro.experiments.multi_client``.
The wall-clock time reported by pytest-benchmark is the cost of
*simulating* the workload; the quantities the scaling story cares about —
mean/max simulated RTT, simulated throughput, §5.7 stall-queue depth, and
the deterministic simulated-duration/event-count pair the regression
checker corroborates wall-clock warnings with — are attached to
``extra_info``.

Two scaling regimes:

* **uncontended** (the seed model): processing delays charged in parallel,
  RTT stays essentially flat — this measures engine throughput;
* **contended** (``server_cores=1`` plus the 2004-era cost model): every
  request competes for one server CPU, so steady-state mean RTT must grow
  monotonically with the fleet — the realistic degradation curve the
  ROADMAP's server-CPU-contention item asked for.

Also asserts the property every later scaling PR leans on: the workload is
**deterministic** — two fresh runs of the same ≥32-client configuration
produce identical per-call RTT sequences for both SOAP and CORBA.

``REPRO_BENCH_QUICK=1`` (set by ``run_all.py --quick``) shrinks the grids.

Run with:  pytest benchmarks/bench_multi_client_scaling.py --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.multi_client import (
    SCENARIO_STALE_STORM,
    format_scaling,
    run_multi_client,
    run_scaling,
)
from repro.net.latency import era_2004_cost_model

_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: Fleet sizes measured for each protocol (the acceptance floor is 512).
CLIENT_COUNTS = (1, 8, 32) if _QUICK else (1, 8, 32, 64, 256, 512)
#: Fleet sizes for the contended (bounded-CPU) sweep.
CONTENDED_COUNTS = (1, 8, 32) if _QUICK else (1, 8, 32, 128)
CALLS_PER_CLIENT = 5


def _record(benchmark, result):
    benchmark.extra_info["technology"] = result.technology
    benchmark.extra_info["scenario"] = result.scenario
    benchmark.extra_info["clients"] = result.clients
    benchmark.extra_info["mean_simulated_rtt_s"] = round(result.mean_rtt, 5)
    benchmark.extra_info["max_simulated_rtt_s"] = round(result.max_rtt, 5)
    benchmark.extra_info["simulated_throughput_calls_per_s"] = round(result.throughput, 1)
    benchmark.extra_info["max_stall_queue_depth"] = result.max_stall_queue_depth
    benchmark.extra_info["simulated_duration_s"] = round(result.report.duration, 5)
    benchmark.extra_info["events_dispatched"] = result.report.events_dispatched


@pytest.mark.benchmark(group="multi-client-scaling")
@pytest.mark.parametrize("technology", ["soap", "corba"])
@pytest.mark.parametrize("clients", CLIENT_COUNTS)
def test_steady_scaling(benchmark, technology, clients):
    """Steady-state fleet: every call hits a live method."""
    result = benchmark.pedantic(
        run_multi_client,
        args=(technology, clients),
        kwargs={"calls_per_client": CALLS_PER_CLIENT},
        rounds=1,
        iterations=1,
    )
    _record(benchmark, result)
    assert result.total_calls == clients * CALLS_PER_CLIENT
    assert result.report.total_successes == result.total_calls
    # One persistent connection per client: keep-alive, not per-call churn.
    assert result.server_connections == clients


@pytest.mark.benchmark(group="multi-client-contention")
@pytest.mark.parametrize("technology", ["soap", "corba"])
def test_single_core_rtt_degrades_monotonically(benchmark, technology):
    """With one server core, steady-state mean RTT grows with the fleet.

    This is the ROADMAP server-CPU-contention acceptance: per-request
    processing delays are serialised through a bounded CPU, so the flat
    RTT curve of the unlimited-parallelism model turns into realistic
    queueing degradation.
    """

    def sweep():
        return [
            run_multi_client(
                technology,
                clients,
                calls_per_client=3,
                cost_model=era_2004_cost_model(),
                server_cores=1,
            )
            for clients in CONTENDED_COUNTS
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rtts = [result.mean_rtt for result in results]
    for clients, rtt in zip(CONTENDED_COUNTS, rtts):
        benchmark.extra_info[f"mean_rtt_1core_{clients}c"] = round(rtt, 5)
    assert all(a < b for a, b in zip(rtts, rtts[1:])), rtts
    # Larger fleets actually queued for the CPU.
    assert results[-1].server_waited_seconds > results[0].server_waited_seconds
    assert all(result.server_cores == 1 for result in results)


@pytest.mark.benchmark(group="multi-client-stall")
@pytest.mark.parametrize("technology", ["soap", "corba"])
@pytest.mark.parametrize("clients", (8, 32))
def test_stale_storm_stall_queue(benchmark, technology, clients):
    """§5.7 under load: stale calls stall and queue, then drain in order."""
    result = benchmark.pedantic(
        run_multi_client,
        args=(technology, clients),
        kwargs={"calls_per_client": 6, "scenario": SCENARIO_STALE_STORM},
        rounds=1,
        iterations=1,
    )
    _record(benchmark, result)
    assert result.stalled_calls > 0
    assert result.report.total_stale_faults == result.clients * 2  # every 3rd of 6 calls
    # The stall queue must actually form under a concurrent fleet.
    assert result.max_stall_queue_depth >= clients // 4


@pytest.mark.benchmark(group="multi-client-determinism")
@pytest.mark.parametrize("technology", ["soap", "corba"])
def test_32_clients_deterministic(benchmark, technology):
    """Two fresh ≥32-client runs produce identical RTT sequences."""

    def run_twice():
        first = run_multi_client(technology, 32, calls_per_client=CALLS_PER_CLIENT)
        second = run_multi_client(technology, 32, calls_per_client=CALLS_PER_CLIENT)
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    _record(benchmark, first)
    assert first.report.all_rtts == second.report.all_rtts
    assert first.report.duration == second.report.duration


@pytest.mark.benchmark(group="multi-client-determinism")
@pytest.mark.parametrize("technology", ["soap", "corba"])
def test_contended_determinism(benchmark, technology):
    """The bounded-CPU model preserves the determinism contract."""

    def run_twice():
        kwargs = {
            "calls_per_client": 3,
            "cost_model": era_2004_cost_model(),
            "server_cores": 2,
        }
        first = run_multi_client(technology, 32, **kwargs)
        second = run_multi_client(technology, 32, **kwargs)
        return first, second

    first, second = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    _record(benchmark, first)
    assert first.report.all_rtts == second.report.all_rtts


@pytest.mark.benchmark(group="multi-client-scaling")
def test_full_scaling_table(benchmark):
    """The whole sweep at once, printing the scaling table."""
    results = benchmark.pedantic(
        run_scaling,
        kwargs={"client_counts": (1, 8, 32), "calls_per_client": 3},
        rounds=1,
        iterations=1,
    )
    print("\n" + format_scaling(results))
    for result in results:
        key = f"{result.technology}-{result.clients}"
        benchmark.extra_info[key] = round(result.mean_rtt, 5)
    # CORBA stays cheaper than SOAP at every fleet size (Table 1's shape
    # must survive scale-out).
    by_key = {(r.technology, r.clients): r.mean_rtt for r in results}
    for clients in (1, 8, 32):
        assert by_key[("corba", clients)] < by_key[("soap", clients)]
