"""Shared configuration for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.util.ids import reset_global_ids


@pytest.fixture(autouse=True)
def _reset_ids():
    """Keep generated identifiers deterministic across benchmark rounds."""
    reset_global_ids()
    yield
    reset_global_ids()
