"""E7 — interface-generation cost versus interface size (§5.6 premise).

The stable-change mechanism exists because "the generation and publication of
the server interface description is a relatively expensive operation".  This
benchmark measures the wall-clock cost of generating WSDL and CORBA-IDL
documents as the number of distributed operations grows, plus the cost of the
full generate→publish→fetch→parse round trip a client refresh pays.

Run with:  pytest benchmarks/bench_interface_generation.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.corba.idl import generate_idl, parse_idl
from repro.experiments.interface_generation import build_interface, run_interface_generation_sweep
from repro.soap.wsdl import generate_wsdl, parse_wsdl


@pytest.mark.benchmark(group="interface-generation")
@pytest.mark.parametrize("operations", [5, 25, 100])
def test_wsdl_generation_cost(benchmark, operations):
    description = build_interface(operations)
    document = benchmark(generate_wsdl, description)
    assert parse_wsdl(document).same_signature(description)
    benchmark.extra_info["operations"] = operations
    benchmark.extra_info["document_bytes"] = len(document)


@pytest.mark.benchmark(group="interface-generation")
@pytest.mark.parametrize("operations", [5, 25, 100])
def test_idl_generation_cost(benchmark, operations):
    description = build_interface(operations)
    document = benchmark(generate_idl, description)
    assert parse_idl(document).same_signature(description)
    benchmark.extra_info["operations"] = operations
    benchmark.extra_info["document_bytes"] = len(document)


@pytest.mark.benchmark(group="interface-generation")
def test_generate_parse_roundtrip_cost(benchmark):
    """The full cost a client refresh pays: generate + parse both documents."""
    description = build_interface(25)

    def roundtrip():
        parse_wsdl(generate_wsdl(description))
        parse_idl(generate_idl(description))

    benchmark(roundtrip)


@pytest.mark.benchmark(group="interface-generation")
def test_document_size_sweep(benchmark):
    results = benchmark(run_interface_generation_sweep)
    sizes = [(result.operations, result.wsdl_bytes, result.idl_bytes) for result in results]
    assert sizes == sorted(sizes)
    print("\noperations  WSDL bytes  IDL bytes")
    for operations, wsdl_bytes, idl_bytes in sizes:
        print(f"{operations:10d}  {wsdl_bytes:10d}  {idl_bytes:9d}")
    benchmark.extra_info["sweep"] = sizes
