"""The million-client cohort-scale acceptance benchmark.

The fault drill at a scale the discrete fleet cannot reach: a million
clients (32 discrete representatives + cohort flows modeling the rest)
against the 4-server mixed SOAP/CORBA fleet, through a mid-run crash, a
partition that heals, a restart, **and** a rolling breaking interface
upgrade (``echo`` → ``echo_v2``).  The headline quantity is
``clients_simulated_per_second`` — how many clients one wall-clock second
of simulation carries.

The run is asserted byte-deterministic (two fresh runs produce identical
cohort fingerprints — every counter, every histogram bin), every modeled
call is accounted for, and the §6 recency guarantee holds at flow
granularity (``recency_violations == 0``) while the breaking upgrade
forces flow-level rebinds.

``REPRO_BENCH_QUICK=1`` (set by ``run_all.py --quick``) drops the scale to
100k clients.

Run with:  pytest benchmarks/bench_million_clients.py --benchmark-only -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cluster.presets import (
    MILLION_CLIENTS,
    MILLION_CLIENTS_QUICK,
    million_client_scenario,
)

_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

CLIENTS = MILLION_CLIENTS_QUICK if _QUICK else MILLION_CLIENTS
REPRESENTATIVES = 32


@pytest.mark.benchmark(group="million-clients")
def test_million_clients_cohort_drill(benchmark):
    """1M clients × crash + partition + rolling breaking upgrade, deterministic."""

    def run_twice():
        started = time.perf_counter()
        first = million_client_scenario(CLIENTS).run()
        first_wall = time.perf_counter() - started
        second = million_client_scenario(CLIENTS).run()
        return first, second, first_wall

    first, second, first_wall = benchmark.pedantic(run_twice, rounds=1, iterations=1)

    # Byte-deterministic across full reruns: every cohort counter and
    # histogram bin, plus the discrete representatives' RTT sequences.
    assert first.cohort_fingerprint() == second.cohort_fingerprint()
    assert first.all_rtts == second.all_rtts
    assert first.events_dispatched == second.events_dispatched

    # Every client is carried: representatives discretely, the rest modeled.
    assert first.simulated_clients == CLIENTS
    assert len(first.clients) == REPRESENTATIVES
    assert first.modeled_clients == CLIENTS - REPRESENTATIVES
    # Conservation: every modeled call completed or was abandoned.
    modeled_issued = first.modeled_clients * 2
    assert (
        first.total_modeled_calls + first.total_abandoned_calls == modeled_issued
    )

    # The §6 recency guarantee held at cohort scale, through every fault
    # and the breaking upgrade.
    assert first.total_recency_violations == 0
    # The rolling upgrade really was breaking: flows rebound their stubs.
    assert first.total_rebinds > 0
    assert any(record.service == "EchoSoap" for record in first.rollouts)
    # The bounded server cores really contended: modeled latency spread out.
    percentiles = first.modeled_rtt_percentiles
    assert percentiles["p99"] > percentiles["p50"]

    benchmark.extra_info["clients_simulated"] = first.simulated_clients
    benchmark.extra_info["representatives"] = REPRESENTATIVES
    benchmark.extra_info["clients_simulated_per_second"] = round(
        first.simulated_clients / first_wall
    )
    benchmark.extra_info["events_dispatched"] = first.events_dispatched
    benchmark.extra_info["simulated_duration_s"] = round(first.duration, 5)
    benchmark.extra_info["deterministic_modeled_calls"] = first.total_modeled_calls
    benchmark.extra_info["deterministic_rebinds"] = first.total_rebinds
    benchmark.extra_info["deterministic_abandoned_calls"] = first.total_abandoned_calls
    benchmark.extra_info["recency_violations"] = first.total_recency_violations
    benchmark.extra_info["modeled_rtt_p50_s"] = round(percentiles["p50"], 6)
    benchmark.extra_info["modeled_rtt_p95_s"] = round(percentiles["p95"], 6)
    benchmark.extra_info["modeled_rtt_p99_s"] = round(percentiles["p99"], 6)
    benchmark.extra_info["modeled_mean_rtt_s"] = round(first.modeled_mean_rtt, 6)
