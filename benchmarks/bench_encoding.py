"""E6 — substrate characterisation: SOAP/XML vs CORBA/GIOP wire costs.

Quantifies the difference that drives the Table 1 gap: for the same logical
call, how many bytes travel in each encoding and how expensive encode+decode
is.  The paper's §2 background (text over HTTP vs binary over IIOP) predicts
SOAP messages to be several times larger; the benchmark asserts that shape.

Run with:  pytest benchmarks/bench_encoding.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.corba.cdr import marshal_values, unmarshal_values
from repro.corba.giop import RequestMessage, parse_message
from repro.experiments.encoding_costs import (
    format_encoding_comparison,
    run_encoding_comparison,
)
from repro.soap.envelope import SoapRequest


@pytest.mark.benchmark(group="encoding-size")
def test_message_size_comparison(benchmark):
    results = benchmark(run_encoding_comparison)
    assert all(result.soap_total > result.giop_total for result in results)
    print("\n" + format_encoding_comparison(results))
    for result in results:
        benchmark.extra_info[result.label] = {
            "soap_bytes": result.soap_total,
            "giop_bytes": result.giop_total,
            "ratio": round(result.size_ratio, 2),
        }


@pytest.mark.benchmark(group="encoding-cpu")
def test_soap_envelope_encode_decode(benchmark):
    """Wall-clock cost of one SOAP request encode + decode."""
    arguments = ("hello from the client", 42, [1.5, 2.5, 3.5], True)

    def roundtrip():
        xml = SoapRequest.for_call("echo", arguments, namespace="urn:bench").to_xml()
        return SoapRequest.from_xml(xml)

    parsed = benchmark(roundtrip)
    assert parsed.operation == "echo"


@pytest.mark.benchmark(group="encoding-cpu")
def test_giop_request_marshal_unmarshal(benchmark):
    """Wall-clock cost of one GIOP request marshal + parse."""
    arguments = ("hello from the client", 42, [1.5, 2.5, 3.5], True)

    def roundtrip():
        message = RequestMessage(1, "EchoService", "echo", marshal_values(arguments))
        parsed = parse_message(message.to_bytes())
        return unmarshal_values(parsed.arguments_cdr)

    values = benchmark(roundtrip)
    assert values[1] == 42


@pytest.mark.benchmark(group="encoding-cpu")
def test_large_payload_soap_vs_giop_cpu(benchmark):
    """Encode/decode a 4 KiB string payload in both encodings back to back,
    so the per-byte cost asymmetry is visible in one number."""
    payload = "x" * 4096

    def both():
        soap_xml = SoapRequest.for_call("store", (payload,), namespace="urn:bench").to_xml()
        SoapRequest.from_xml(soap_xml)
        giop = RequestMessage(1, "Store", "store", marshal_values((payload,))).to_bytes()
        parse_message(giop)
        return len(soap_xml), len(giop)

    soap_size, giop_size = benchmark(both)
    assert soap_size > giop_size
