"""E1 — Table 1: RTT of RMI calls for SDE servers vs their static baselines.

Regenerates the paper's Table 1 (§7).  Each benchmark measures one of the
four configurations; the wall-clock time reported by pytest-benchmark is the
cost of *simulating* the experiment, while the quantity the paper reports —
the mean simulated round-trip time per call — is attached to the benchmark's
``extra_info`` and printed as a table at the end of the run.

Run with:  pytest benchmarks/bench_table1_rtt.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import (
    PAPER_TABLE1_RTT,
    format_table1,
    run_sde_corba,
    run_sde_soap,
    run_static_corba,
    run_static_soap,
    run_table1,
)

#: Number of measured calls per configuration (the paper averages 100).
CALLS = 100


def _record(benchmark, result):
    benchmark.extra_info["configuration"] = result.configuration
    benchmark.extra_info["mean_simulated_rtt_s"] = round(result.mean_rtt, 4)
    benchmark.extra_info["paper_rtt_s"] = result.paper_rtt
    assert result.calls == CALLS


@pytest.mark.benchmark(group="table1-rtt")
def test_sde_soap_vs_axis_client(benchmark):
    """Row 1: SDE SOAP server (live in JPie) called by a static Axis client."""
    result = benchmark.pedantic(run_sde_soap, args=(CALLS,), rounds=1, iterations=1)
    _record(benchmark, result)
    assert result.mean_rtt == pytest.approx(PAPER_TABLE1_RTT["SDE SOAP/Axis"], rel=0.35)


@pytest.mark.benchmark(group="table1-rtt")
def test_static_axis_tomcat_vs_axis_client(benchmark):
    """Row 2: static Axis/Tomcat server called by a static Axis client."""
    result = benchmark.pedantic(run_static_soap, args=(CALLS,), rounds=1, iterations=1)
    _record(benchmark, result)
    assert result.mean_rtt == pytest.approx(PAPER_TABLE1_RTT["Axis-Tomcat/Axis"], rel=0.35)


@pytest.mark.benchmark(group="table1-rtt")
def test_sde_corba_vs_openorb_client(benchmark):
    """Row 3: SDE CORBA server (live in JPie) called by a static OpenORB client."""
    result = benchmark.pedantic(run_sde_corba, args=(CALLS,), rounds=1, iterations=1)
    _record(benchmark, result)
    assert result.mean_rtt == pytest.approx(PAPER_TABLE1_RTT["SDE CORBA/OpenORB"], rel=0.35)


@pytest.mark.benchmark(group="table1-rtt")
def test_static_openorb_vs_openorb_client(benchmark):
    """Row 4: static OpenORB server called by a static OpenORB client."""
    result = benchmark.pedantic(run_static_corba, args=(CALLS,), rounds=1, iterations=1)
    _record(benchmark, result)
    assert result.mean_rtt == pytest.approx(PAPER_TABLE1_RTT["OpenORB/OpenORB"], rel=0.35)


@pytest.mark.benchmark(group="table1-rtt")
def test_full_table_shape(benchmark):
    """The whole table at once, asserting the paper's qualitative claims."""
    results = benchmark.pedantic(run_table1, kwargs={"calls": 25}, rounds=1, iterations=1)
    by_name = {result.configuration: result.mean_rtt for result in results}

    # Shape claim 1: CORBA beats SOAP in both the static and the SDE rows.
    assert by_name["OpenORB/OpenORB"] < by_name["Axis-Tomcat/Axis"]
    assert by_name["SDE CORBA/OpenORB"] < by_name["SDE SOAP/Axis"]
    # Shape claim 2 (§7): SDE overhead is positive but within ~25%.
    assert 1.0 < by_name["SDE SOAP/Axis"] / by_name["Axis-Tomcat/Axis"] <= 1.25
    assert 1.0 < by_name["SDE CORBA/OpenORB"] / by_name["OpenORB/OpenORB"] <= 1.25

    print("\n" + format_table1(results))
    for result in results:
        benchmark.extra_info[result.configuration] = round(result.mean_rtt, 4)
