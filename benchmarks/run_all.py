"""Run every ``bench_*.py`` and append a trajectory record to BENCH_results.json.

Usage::

    python benchmarks/run_all.py                 # run all benchmarks
    python benchmarks/run_all.py table1          # only files matching the substring
    python benchmarks/run_all.py table1 fault    # several filters: match ANY of them
    python benchmarks/run_all.py --quick         # small parameter grids (CI mode)
    python benchmarks/run_all.py --strict        # exit nonzero on corroborated
                                                 # wall-clock regressions (CI gate)
    python benchmarks/run_all.py --list          # print discovered files, run nothing
    python benchmarks/run_all.py --compact       # prune the trajectory file and exit
    python benchmarks/run_all.py --quick --compact   # run, then prune in one go

Each invocation appends one record to ``BENCH_results.json`` at the repo
root, so successive PRs accumulate a performance trajectory: wall-clock
seconds per benchmark (the cost of simulating each experiment) plus every
``extra_info`` quantity the benchmarks attach (simulated RTTs, throughput,
stall-queue depths).  Future PRs diff the latest record against earlier ones
to spot regressions — and this runner warns when a benchmark's wall-clock
time regresses against the previous comparable run.

Wall clock alone is machine-noisy, so a wall-clock slowdown is only flagged
when the benchmark's *deterministic* workload metrics (simulated duration,
scheduler events dispatched, or any ``deterministic_*`` quantity in
``extra_info``) corroborate it by regressing too; when a benchmark records
no deterministic metrics, the wall-clock-only warning is kept as before.
Slowdowns with identical simulated work are not recorded as regressions,
but they are still printed as informational notes so a pure code-level
slowdown cannot pass silently.

``--strict`` (used by the CI perf gate) promotes the corroborated warnings
to failures: the run exits nonzero when a wall-clock regression is
accompanied by deterministic simulated work that *changed* — grown work
means the same scenario now dispatches more events, and shrunk work taking
longer is the clearest possible code slowdown.  Both are machine-
independent signals.  Wall-clock-only slowdowns — including those with
*identical* deterministic work — stay warnings/notes even under
``--strict``: a 2× wall-clock swing on identical work is routinely plain
machine variance across CI runners, so failing on it would make the gate
flaky.  Benchmarks that record an ``obs_profile`` blob (per-component mean
simulated latency from ``repro.obs.analyze``) get their flagged
regressions *attributed*: the warning and the STRICT line name the
dominant regressed component (network / stall / core_wait / cpu /
backoff / rebind), so a failing gate says which layer to look at.

``--compact`` prunes ``BENCH_results.json`` in place: each benchmark keeps
only its most recent appearances (per quick/full mode), and runs left with
no benchmarks are dropped.  The trajectory grows by one record per
invocation forever otherwise; compaction keeps enough history for the
regression gate (which only ever compares against the most recent
comparable run) while bounding the file.  Alone, ``--compact`` prunes and
exits; combined with a run (``--quick --strict --compact``, as CI does) it
prunes *after* the run's record is appended, so the trajectory stays
bounded without a separate invocation.

``--quick`` exports ``REPRO_BENCH_QUICK=1``; parameter-heavy benchmarks read
it at collection time and shrink their grids (fewer fleet sizes, fewer
events), which keeps the CI run to a fraction of the full sweep.

``REPRO_BENCH_WARNINGS`` (space-separated ``-W``-style filter specs) is
forwarded to the pytest subprocess; CI uses it to turn DeprecationWarnings
into errors while allowing only the repro-internal deprecation shims
(``repro.testbed`` / ``repro.workload``) to keep warning.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
RESULTS_PATH = REPO_ROOT / "BENCH_results.json"

#: A benchmark this much slower than the previous comparable run is flagged.
REGRESSION_FACTOR = 1.5
#: ... unless the absolute growth is under this (timer noise on tiny runs).
REGRESSION_MIN_DELTA_S = 0.05
#: Deterministic ``extra_info`` metrics used to corroborate wall-clock
#: regressions: identical simulated work + slower wall clock = machine noise.
DETERMINISTIC_KEYS = ("simulated_duration_s", "events_dispatched")
DETERMINISTIC_PREFIX = "deterministic_"
#: A deterministic metric this much above its previous value counts as a
#: genuine workload regression (simulated quantities are exact, the margin
#: only absorbs rounding in recorded values).
DETERMINISTIC_FACTOR = 1.05


def discover(patterns: "list[str] | None" = None) -> list[Path]:
    """Every benchmark file, optionally filtered by name substrings.

    With several patterns a file is kept when it matches *any* of them,
    so ``run_all.py fault rolling`` runs both drills in one invocation.
    """
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if patterns:
        files = [
            path
            for path in files
            if any(pattern in path.name for pattern in patterns)
        ]
    return files


def run_benchmarks(files: list[Path], quick: bool = False) -> tuple[int, list[dict]]:
    """Run ``files`` under pytest-benchmark; return (exit_code, records)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = Path(handle.name)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if quick:
        env["REPRO_BENCH_QUICK"] = "1"
    else:
        env.pop("REPRO_BENCH_QUICK", None)
    command = [
        sys.executable,
        "-m",
        "pytest",
        *[str(path) for path in files],
        "--benchmark-only",
        "-q",
        f"--benchmark-json={json_path}",
    ]
    for spec in env.get("REPRO_BENCH_WARNINGS", "").split():
        command += ["-W", spec]
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    try:
        payload = json.loads(json_path.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {"benchmarks": []}
    finally:
        json_path.unlink(missing_ok=True)

    records = [
        {
            "name": bench["name"],
            "group": bench.get("group"),
            "wall_clock_mean_s": bench["stats"]["mean"],
            "extra_info": bench.get("extra_info", {}),
        }
        for bench in payload.get("benchmarks", [])
    ]
    return completed.returncode, records


def load_trajectory() -> dict:
    """Read the trajectory file, tolerating a missing or corrupt one."""
    if RESULTS_PATH.exists():
        try:
            trajectory = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            trajectory = {"runs": []}
    else:
        trajectory = {"runs": []}
    trajectory.setdefault("runs", [])
    return trajectory


#: Latency components an ``obs_profile`` blob may carry (mean simulated
#: seconds per call), in the analyzer's canonical order.
PROFILE_COMPONENTS = ("network", "stall", "core_wait", "cpu", "backoff", "rebind")


def dominant_component(before: "dict | None", now: "dict | None") -> "tuple[str, float, float] | None":
    """The latency component whose mean grew most between two profiles.

    ``before``/``now`` are ``obs_profile`` blobs from ``extra_info``
    (component name -> mean simulated seconds, as produced by
    ``LatencyProfile.component_means()``).  Returns ``(component,
    before_mean_s, now_mean_s)`` or None when either blob is missing or no
    component regressed.  Mirrors ``repro.obs.analyze.dominant_component``
    — duplicated here because this runner must work without ``src`` on the
    path; keep the two in sync.
    """
    if not isinstance(before, dict) or not isinstance(now, dict):
        return None
    deltas = {}
    for name in PROFILE_COMPONENTS:
        a, b = before.get(name), now.get(name)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            deltas[name] = b - a
    if not deltas:
        return None
    worst = max(sorted(deltas), key=lambda name: deltas[name])
    if deltas[worst] <= 0:
        return None
    return worst, float(before[worst]), float(now[worst])


def deterministic_metrics(bench: dict) -> dict[str, float]:
    """The deterministic workload metrics a benchmark record carries."""
    metrics = {}
    for key, value in (bench.get("extra_info") or {}).items():
        if key in DETERMINISTIC_KEYS or key.startswith(DETERMINISTIC_PREFIX):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[key] = float(value)
    return metrics


def find_regressions(records: list[dict], trajectory: dict, quick: bool) -> list[dict]:
    """Compare each benchmark against the previous comparable run of it.

    Only runs with the same ``quick`` mode are comparable (the grids differ),
    and the most recent comparable appearance of each benchmark name wins.
    A wall-clock slowdown is reported only when the benchmark's deterministic
    metrics regressed too (or when it records none to compare).
    """
    previous: dict[str, dict] = {}
    for run in trajectory["runs"]:
        if bool(run.get("quick")) != quick:
            continue
        for bench in run.get("benchmarks", []):
            previous[bench["name"]] = bench

    regressions = []
    for bench in records:
        before = previous.get(bench["name"])
        if before is None:
            continue
        before_s = before["wall_clock_mean_s"]
        now = bench["wall_clock_mean_s"]
        wall_regressed = (
            now > before_s * REGRESSION_FACTOR and now - before_s > REGRESSION_MIN_DELTA_S
        )
        if not wall_regressed:
            continue
        metrics_now = deterministic_metrics(bench)
        metrics_before = deterministic_metrics(before)
        shared = sorted(set(metrics_now) & set(metrics_before))
        grew = [
            key
            for key in shared
            if metrics_now[key] > metrics_before[key] * DETERMINISTIC_FACTOR
        ]
        shrank = [
            key
            for key in shared
            if metrics_now[key] < metrics_before[key] / DETERMINISTIC_FACTOR
        ]
        regression = {
            "name": bench["name"],
            "previous_s": round(before_s, 4),
            "current_s": round(now, 4),
            "factor": round(now / before_s, 2),
        }
        dominant = dominant_component(
            (before.get("extra_info") or {}).get("obs_profile"),
            (bench.get("extra_info") or {}).get("obs_profile"),
        )
        if dominant is not None:
            # Attribute the regression to the simulated-latency component
            # that grew most (from the benchmark's obs_profile blob), so a
            # flagged run names the layer to look at, not just the number.
            regression["dominant_component"] = {
                "component": dominant[0],
                "previous_mean_s": dominant[1],
                "current_mean_s": dominant[2],
            }
        if shared and not grew and not shrank:
            # Identical simulated work, slower wall clock: per the flagging
            # policy this is not recorded as a regression, but it is still
            # surfaced as a note — it could be machine noise *or* a pure
            # code slowdown, and silence would hide the latter.
            regression["suppressed"] = True
        changed = grew or shrank
        if changed:
            # Flag with evidence either way: more simulated work explains a
            # slower wall clock; *less* simulated work taking longer is the
            # clearest possible pure code slowdown.
            regression["deterministic_metrics"] = {
                key: {"previous": metrics_before[key], "current": metrics_now[key]}
                for key in changed
            }
            if shrank and not grew:
                regression["workload_shrank"] = True
        regressions.append(regression)
    return regressions


def strict_failures(candidates: list[dict]) -> list[dict]:
    """The regression candidates that fail a ``--strict`` run.

    Exactly the corroborated warnings: wall-clock regressions whose
    deterministic simulated work *changed* (``deterministic_metrics`` —
    grown work costs more events for the same scenario, shrunk work taking
    longer is the clearest code slowdown).  Those signals are
    machine-independent.  Identical-work slowdowns (``suppressed``) and
    wall-clock-only candidates are excluded: wall clock alone swings 2×
    between runners on unchanged code, so failing on it would flake CI.
    """
    return [c for c in candidates if c.get("deterministic_metrics")]


def append_trajectory(
    records: list[dict],
    exit_code: int,
    files: list[Path],
    quick: bool,
    regressions: list[dict],
) -> dict:
    """Append one run record to the trajectory file and return it."""
    trajectory = load_trajectory()
    run_record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "files": [path.name for path in files],
        "exit_code": exit_code,
        "quick": quick,
        "benchmarks": records,
    }
    if regressions:
        run_record["wall_clock_regressions"] = regressions
    trajectory["runs"].append(run_record)
    RESULTS_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
    return run_record


#: ``--compact`` keeps this many most-recent appearances of each benchmark
#: (per quick/full mode) — comfortably more than the single previous run
#: the regression gate compares against.
COMPACT_KEEP = 8


def compact_trajectory(trajectory: dict, keep: int = COMPACT_KEEP) -> dict:
    """Prune the trajectory to each benchmark's last ``keep`` appearances.

    Quick and full runs are counted separately (they are never comparable),
    and a run record whose benchmarks are all pruned is dropped entirely.
    Run-level metadata (timestamps, exit codes, recorded regressions) is
    untouched for the runs that remain.
    """
    seen: dict[tuple[bool, str], int] = {}
    kept_runs = []
    for run in reversed(trajectory.get("runs", [])):
        quick = bool(run.get("quick"))
        benches = []
        for bench in run.get("benchmarks", []):
            key = (quick, bench["name"])
            if seen.get(key, 0) < keep:
                seen[key] = seen.get(key, 0) + 1
                benches.append(bench)
        if benches:
            kept_runs.append({**run, "benchmarks": benches})
    kept_runs.reverse()
    return {**trajectory, "runs": kept_runs}


def main(argv: list[str]) -> int:
    args = argv[1:]
    quick = "--quick" in args
    list_only = "--list" in args
    strict = "--strict" in args
    compact = "--compact" in args
    if compact and args == ["--compact"]:
        # Standalone form: prune the trajectory and exit (the historical
        # behaviour).  Combined with a run, compaction happens after the
        # run's record is appended instead — see the end of main().
        _compact_and_report()
        return 0
    patterns = [
        arg for arg in args if arg not in ("--quick", "--list", "--strict", "--compact")
    ]
    files = discover(patterns or None)
    if not files:
        print(f"no benchmark files match {patterns!r}", file=sys.stderr)
        return 2
    if list_only:
        for path in files:
            print(path.name)
        return 0
    mode = " (quick grids)" if quick else ""
    print(
        f"running {len(files)} benchmark file(s){mode}: "
        f"{', '.join(p.name for p in files)}"
    )
    trajectory_before = load_trajectory()
    exit_code, records = run_benchmarks(files, quick=quick)
    candidates = find_regressions(records, trajectory_before, quick)
    regressions = [c for c in candidates if not c.get("suppressed")]
    suppressed = [c for c in candidates if c.get("suppressed")]
    run_record = append_trajectory(records, exit_code, files, quick, regressions)
    print(
        f"recorded {len(records)} benchmark(s) to {RESULTS_PATH.name} "
        f"({len(load_trajectory()['runs'])} run(s) in trajectory)"
    )
    for bench in run_record["benchmarks"]:
        line = f"  {bench['name']}: {bench['wall_clock_mean_s']:.4f}s wall-clock"
        extra = bench.get("extra_info") or {}
        percentiles = [
            f"{level}={extra[key]:.5f}s"
            for level, key in (
                ("p50", "rtt_p50_s"),
                ("p95", "rtt_p95_s"),
                ("p99", "rtt_p99_s"),
            )
            if isinstance(extra.get(key), (int, float))
        ]
        if percentiles:
            line += f"  [simulated RTT {' '.join(percentiles)}]"
        calls_per_sec = extra.get("calls_per_sec")
        if isinstance(calls_per_sec, (int, float)) and not isinstance(calls_per_sec, bool):
            line += f"  [{calls_per_sec:,.0f} simulated calls/s]"
        obs_overhead = extra.get("obs_overhead_pct")
        if isinstance(obs_overhead, (int, float)) and not isinstance(obs_overhead, bool):
            line += f"  [obs overhead {obs_overhead:+.1f}%]"
        print(line)
    for regression in regressions:
        evidence = regression.get("deterministic_metrics")
        if evidence and regression.get("workload_shrank"):
            corroboration = (
                " (simulated work SHRANK — likely a pure code slowdown: "
                + ", ".join(sorted(evidence))
                + ")"
            )
        elif evidence:
            corroboration = (
                " (deterministic workload grew: " + ", ".join(sorted(evidence)) + ")"
            )
        else:
            corroboration = " (no deterministic metrics recorded to corroborate)"
        dominant = regression.get("dominant_component")
        if dominant:
            corroboration += (
                f" [dominant component: {dominant['component']} "
                f"{dominant['previous_mean_s'] * 1e3:.3f}ms -> "
                f"{dominant['current_mean_s'] * 1e3:.3f}ms]"
            )
        print(
            f"  WARNING: {regression['name']} wall-clock regressed "
            f"{regression['previous_s']}s -> {regression['current_s']}s "
            f"({regression['factor']}x slower than the previous run){corroboration}"
        )
    for note in suppressed:
        print(
            f"  note: {note['name']} wall clock slowed "
            f"{note['previous_s']}s -> {note['current_s']}s ({note['factor']}x) with "
            "identical simulated work — machine noise or a code slowdown; not flagged"
        )
    if strict:
        corroborated = strict_failures(candidates)
        if corroborated:
            names = []
            for candidate in corroborated:
                label = candidate["name"]
                dominant = candidate.get("dominant_component")
                if dominant:
                    label += f" [dominant component: {dominant['component']}]"
                names.append(label)
            print(
                f"STRICT: {len(corroborated)} corroborated wall-clock "
                "regression(s) (deterministic workload changed) — failing "
                "the run: " + ", ".join(names)
            )
            if exit_code == 0:
                exit_code = 3
    if compact:
        _compact_and_report()
    return exit_code


def _compact_and_report() -> None:
    trajectory = load_trajectory()
    before = len(trajectory["runs"])
    compacted = compact_trajectory(trajectory)
    RESULTS_PATH.write_text(json.dumps(compacted, indent=2) + "\n")
    print(
        f"compacted {RESULTS_PATH.name}: {before} -> "
        f"{len(compacted['runs'])} run(s), keeping the last "
        f"{COMPACT_KEEP} appearance(s) of each benchmark"
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
