"""Run every ``bench_*.py`` and append a trajectory record to BENCH_results.json.

Usage::

    python benchmarks/run_all.py              # run all benchmarks
    python benchmarks/run_all.py table1       # only files matching the substring
    python benchmarks/run_all.py --quick      # small parameter grids (CI mode)

Each invocation appends one record to ``BENCH_results.json`` at the repo
root, so successive PRs accumulate a performance trajectory: wall-clock
seconds per benchmark (the cost of simulating each experiment) plus every
``extra_info`` quantity the benchmarks attach (simulated RTTs, throughput,
stall-queue depths).  Future PRs diff the latest record against earlier ones
to spot regressions — and this runner already warns when a benchmark's
wall-clock time regresses against the previous comparable run.

``--quick`` exports ``REPRO_BENCH_QUICK=1``; parameter-heavy benchmarks read
it at collection time and shrink their grids (fewer fleet sizes, fewer
events), which keeps the CI run to a fraction of the full sweep.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
RESULTS_PATH = REPO_ROOT / "BENCH_results.json"

#: A benchmark this much slower than the previous comparable run is flagged.
REGRESSION_FACTOR = 1.5
#: ... unless the absolute growth is under this (timer noise on tiny runs).
REGRESSION_MIN_DELTA_S = 0.05


def discover(pattern: str | None = None) -> list[Path]:
    """Every benchmark file, optionally filtered by a name substring."""
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if pattern:
        files = [path for path in files if pattern in path.name]
    return files


def run_benchmarks(files: list[Path], quick: bool = False) -> tuple[int, list[dict]]:
    """Run ``files`` under pytest-benchmark; return (exit_code, records)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = Path(handle.name)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if quick:
        env["REPRO_BENCH_QUICK"] = "1"
    else:
        env.pop("REPRO_BENCH_QUICK", None)
    command = [
        sys.executable,
        "-m",
        "pytest",
        *[str(path) for path in files],
        "--benchmark-only",
        "-q",
        f"--benchmark-json={json_path}",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    try:
        payload = json.loads(json_path.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {"benchmarks": []}
    finally:
        json_path.unlink(missing_ok=True)

    records = [
        {
            "name": bench["name"],
            "group": bench.get("group"),
            "wall_clock_mean_s": bench["stats"]["mean"],
            "extra_info": bench.get("extra_info", {}),
        }
        for bench in payload.get("benchmarks", [])
    ]
    return completed.returncode, records


def load_trajectory() -> dict:
    """Read the trajectory file, tolerating a missing or corrupt one."""
    if RESULTS_PATH.exists():
        try:
            trajectory = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            trajectory = {"runs": []}
    else:
        trajectory = {"runs": []}
    trajectory.setdefault("runs", [])
    return trajectory


def find_regressions(records: list[dict], trajectory: dict, quick: bool) -> list[dict]:
    """Compare each benchmark's wall clock against the previous run of it.

    Only runs with the same ``quick`` mode are comparable (the grids differ),
    and the most recent comparable appearance of each benchmark name wins.
    """
    previous: dict[str, float] = {}
    for run in trajectory["runs"]:
        if bool(run.get("quick")) != quick:
            continue
        for bench in run.get("benchmarks", []):
            previous[bench["name"]] = bench["wall_clock_mean_s"]

    regressions = []
    for bench in records:
        before = previous.get(bench["name"])
        if before is None:
            continue
        now = bench["wall_clock_mean_s"]
        if now > before * REGRESSION_FACTOR and now - before > REGRESSION_MIN_DELTA_S:
            regressions.append(
                {
                    "name": bench["name"],
                    "previous_s": round(before, 4),
                    "current_s": round(now, 4),
                    "factor": round(now / before, 2),
                }
            )
    return regressions


def append_trajectory(
    records: list[dict],
    exit_code: int,
    files: list[Path],
    quick: bool,
    regressions: list[dict],
) -> dict:
    """Append one run record to the trajectory file and return it."""
    trajectory = load_trajectory()
    run_record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "files": [path.name for path in files],
        "exit_code": exit_code,
        "quick": quick,
        "benchmarks": records,
    }
    if regressions:
        run_record["wall_clock_regressions"] = regressions
    trajectory["runs"].append(run_record)
    RESULTS_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
    return run_record


def main(argv: list[str]) -> int:
    args = argv[1:]
    quick = "--quick" in args
    args = [arg for arg in args if arg != "--quick"]
    pattern = args[0] if args else None
    files = discover(pattern)
    if not files:
        print(f"no benchmark files match {pattern!r}", file=sys.stderr)
        return 2
    mode = " (quick grids)" if quick else ""
    print(
        f"running {len(files)} benchmark file(s){mode}: "
        f"{', '.join(p.name for p in files)}"
    )
    trajectory_before = load_trajectory()
    exit_code, records = run_benchmarks(files, quick=quick)
    regressions = find_regressions(records, trajectory_before, quick)
    run_record = append_trajectory(records, exit_code, files, quick, regressions)
    print(
        f"recorded {len(records)} benchmark(s) to {RESULTS_PATH.name} "
        f"({len(load_trajectory()['runs'])} run(s) in trajectory)"
    )
    for bench in run_record["benchmarks"]:
        print(f"  {bench['name']}: {bench['wall_clock_mean_s']:.4f}s wall-clock")
    for regression in regressions:
        print(
            f"  WARNING: {regression['name']} wall-clock regressed "
            f"{regression['previous_s']}s -> {regression['current_s']}s "
            f"({regression['factor']}x slower than the previous run)"
        )
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
