"""Run every ``bench_*.py`` and append a trajectory record to BENCH_results.json.

Usage::

    python benchmarks/run_all.py            # run all benchmarks
    python benchmarks/run_all.py table1     # only files matching the substring

Each invocation appends one record to ``BENCH_results.json`` at the repo
root, so successive PRs accumulate a performance trajectory: wall-clock
seconds per benchmark (the cost of simulating each experiment) plus every
``extra_info`` quantity the benchmarks attach (simulated RTTs, throughput,
stall-queue depths).  Future PRs diff the latest record against earlier ones
to spot regressions.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
RESULTS_PATH = REPO_ROOT / "BENCH_results.json"


def discover(pattern: str | None = None) -> list[Path]:
    """Every benchmark file, optionally filtered by a name substring."""
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if pattern:
        files = [path for path in files if pattern in path.name]
    return files


def run_benchmarks(files: list[Path]) -> tuple[int, list[dict]]:
    """Run ``files`` under pytest-benchmark; return (exit_code, records)."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = Path(handle.name)
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        *[str(path) for path in files],
        "--benchmark-only",
        "-q",
        f"--benchmark-json={json_path}",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    try:
        payload = json.loads(json_path.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {"benchmarks": []}
    finally:
        json_path.unlink(missing_ok=True)

    records = [
        {
            "name": bench["name"],
            "group": bench.get("group"),
            "wall_clock_mean_s": bench["stats"]["mean"],
            "extra_info": bench.get("extra_info", {}),
        }
        for bench in payload.get("benchmarks", [])
    ]
    return completed.returncode, records


def append_trajectory(records: list[dict], exit_code: int, files: list[Path]) -> dict:
    """Append one run record to the trajectory file and return it."""
    if RESULTS_PATH.exists():
        try:
            trajectory = json.loads(RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            trajectory = {"runs": []}
    else:
        trajectory = {"runs": []}
    trajectory.setdefault("runs", [])

    run_record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "files": [path.name for path in files],
        "exit_code": exit_code,
        "benchmarks": records,
    }
    trajectory["runs"].append(run_record)
    RESULTS_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")
    return run_record


def main(argv: list[str]) -> int:
    pattern = argv[1] if len(argv) > 1 else None
    files = discover(pattern)
    if not files:
        print(f"no benchmark files match {pattern!r}", file=sys.stderr)
        return 2
    print(f"running {len(files)} benchmark file(s): {', '.join(p.name for p in files)}")
    exit_code, records = run_benchmarks(files)
    run_record = append_trajectory(records, exit_code, files)
    print(
        f"recorded {len(records)} benchmark(s) to {RESULTS_PATH.name} "
        f"({len(json.loads(RESULTS_PATH.read_text())['runs'])} run(s) in trajectory)"
    )
    for bench in run_record["benchmarks"]:
        print(f"  {bench['name']}: {bench['wall_clock_mean_s']:.4f}s wall-clock")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
