"""E2 — Figure 7: active publishing leaves most interleavings inconsistent.

Regenerates the Figure 7 analysis: with independent publication and
client-update paths, only the combinations (1, i), (1, ii) and (2, ii) make
the server interface change visible to the client developer when the error is
displayed.

Run with:  pytest benchmarks/bench_fig7_active_publishing.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.protocol import ActivePublishingExperiment, run_figure7_matrix


@pytest.mark.benchmark(group="figure7")
def test_active_publishing_matrix(benchmark):
    results = benchmark(run_figure7_matrix)
    assert len(results) == 9

    consistent = {result.label for result in results if result.consistent}
    expected = ActivePublishingExperiment.expected_consistent_labels()
    assert consistent == expected

    print("\nFigure 7 — active publishing (consistent combinations marked *)")
    for result in results:
        marker = "*" if result.consistent else " "
        print(f"  {marker} {result.label:8s} {result.detail}")
    benchmark.extra_info["consistent_combinations"] = sorted(consistent)
    benchmark.extra_info["consistent_count"] = len(consistent)
    benchmark.extra_info["total_combinations"] = len(results)


@pytest.mark.benchmark(group="figure7")
def test_single_combination_classification(benchmark):
    experiment = ActivePublishingExperiment()
    result = benchmark(experiment.run_single, "2", "ii")
    assert result.consistent
