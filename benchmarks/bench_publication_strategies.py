"""E4 — §5.6 ablation: stable-timeout vs change-driven vs polling publication.

Replays a scripted editing session (bursts of interface edits separated by
think time) under the three publication strategies and compares the number of
interface generations/publications, the number of *transient* publications
(interfaces that never survive a burst) and the staleness window after the
last edit.  The paper's stable-timeout mechanism should publish no transient
interfaces while still converging on the final interface.

Run with:  pytest benchmarks/bench_publication_strategies.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.sde.publisher import (
    STRATEGY_CHANGE_DRIVEN,
    STRATEGY_POLLING,
    STRATEGY_STABLE_TIMEOUT,
)
from repro.experiments.publication_strategies import (
    format_strategy_comparison,
    run_publication_strategy_comparison,
    run_single_strategy,
)


def _record(benchmark, result):
    benchmark.extra_info["strategy"] = result.strategy
    benchmark.extra_info["publications"] = result.publications
    benchmark.extra_info["transient_publications"] = result.transient_publications
    benchmark.extra_info["staleness_after_last_edit_s"] = (
        round(result.staleness_after_last_edit, 3)
        if result.staleness_after_last_edit != float("inf")
        else "never"
    )


@pytest.mark.benchmark(group="publication-strategies")
def test_stable_timeout_strategy(benchmark):
    result = benchmark.pedantic(
        run_single_strategy, args=(STRATEGY_STABLE_TIMEOUT,), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.transient_publications == 0
    assert result.final_interface_published


@pytest.mark.benchmark(group="publication-strategies")
def test_change_driven_strategy(benchmark):
    result = benchmark.pedantic(
        run_single_strategy, args=(STRATEGY_CHANGE_DRIVEN,), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.transient_publications > 0
    assert result.final_interface_published


@pytest.mark.benchmark(group="publication-strategies")
def test_polling_strategy(benchmark):
    result = benchmark.pedantic(
        run_single_strategy, args=(STRATEGY_POLLING,), rounds=1, iterations=1
    )
    _record(benchmark, result)
    assert result.final_interface_published


@pytest.mark.benchmark(group="publication-strategies")
def test_strategy_comparison_table(benchmark):
    results = benchmark.pedantic(run_publication_strategy_comparison, rounds=1, iterations=1)
    by_strategy = {result.strategy: result for result in results}
    stable = by_strategy[STRATEGY_STABLE_TIMEOUT]
    change_driven = by_strategy[STRATEGY_CHANGE_DRIVEN]

    # The paper's argument: change-driven publication floods the client with
    # transient interfaces; the stable-timeout mechanism suppresses them while
    # still publishing every stable interface.
    assert stable.publications < change_driven.publications
    assert stable.transient_publications == 0 < change_driven.transient_publications

    print("\n" + format_strategy_comparison(results))
    for result in results:
        benchmark.extra_info[result.strategy] = {
            "publications": result.publications,
            "transient": result.transient_publications,
        }
