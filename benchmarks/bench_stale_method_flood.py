"""E5 — §5.7 ablation: a rogue client flooding the server with stale calls.

"this algorithm prevents a rogue client from overwhelming the server by
sending multiple calls to non-existent methods that trigger IDL generation
needlessly" — the benchmark fires floods of stale calls and checks that the
number of interface generations stays at (at most) one when the interface
genuinely changed and zero when it did not.

Run with:  pytest benchmarks/bench_stale_method_flood.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments.stale_flood import run_stale_flood


@pytest.mark.benchmark(group="stale-flood")
@pytest.mark.parametrize("stale_calls", [10, 50])
def test_flood_after_interface_change(benchmark, stale_calls):
    result = benchmark.pedantic(
        run_stale_flood, kwargs={"stale_calls": stale_calls}, rounds=1, iterations=1
    )
    assert result.non_existent_method_faults == stale_calls
    # One reactive publication is justified (the interface really changed);
    # the flood must not trigger any more generations than that.
    assert result.generations <= 1
    benchmark.extra_info["stale_calls"] = stale_calls
    benchmark.extra_info["generations"] = result.generations
    benchmark.extra_info["generations_per_stale_call"] = round(
        result.generations_per_stale_call, 4
    )


@pytest.mark.benchmark(group="stale-flood")
def test_flood_with_current_interface(benchmark):
    result = benchmark.pedantic(
        run_stale_flood,
        kwargs={"stale_calls": 30, "change_interface_first": False},
        rounds=1,
        iterations=1,
    )
    assert result.non_existent_method_faults == 30
    assert result.generations == 0
    benchmark.extra_info["generations"] = result.generations


@pytest.mark.benchmark(group="stale-flood")
def test_fast_flood_during_editing(benchmark):
    """Stale calls arriving every 10 ms while the developer keeps editing."""
    result = benchmark.pedantic(
        run_stale_flood,
        kwargs={"stale_calls": 40, "interval": 0.01, "publication_timeout": 2.0},
        rounds=1,
        iterations=1,
    )
    assert result.generations <= 2
    benchmark.extra_info["generations"] = result.generations
