"""E3 — Figure 8: reactive publishing satisfies the recency guarantee always.

Runs the real middleware (SDE server + CDE client over the simulated network)
through all sixteen interleavings of regular-publication timing and
regular-client-update timing while a stale call is in flight, for both SOAP
and CORBA.  Every combination must satisfy the §6 guarantee.

Run with:  pytest benchmarks/bench_fig8_reactive_publishing.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.protocol import ReactivePublishingExperiment


def _run_matrix(technology: str):
    return ReactivePublishingExperiment(technology=technology).run_matrix()


def _report(benchmark, records, technology):
    satisfied = sum(1 for record in records if record.guarantee_satisfied)
    visible = sum(1 for record in records if record.change_visible_to_developer)
    assert satisfied == len(records) == 16
    assert visible == len(records)

    print(f"\nFigure 8 — reactive publishing ({technology}): "
          f"{satisfied}/{len(records)} interleavings satisfy the recency guarantee")
    for record in records:
        print(
            f"  ({record.publish_point}, {record.update_point:>3s}) "
            f"server v{record.server_version_in_fault} -> client v{record.client_version_after_call} "
            f"(publications: {record.publications})"
        )
    benchmark.extra_info["technology"] = technology
    benchmark.extra_info["guarantee_satisfied"] = satisfied
    benchmark.extra_info["combinations"] = len(records)


@pytest.mark.benchmark(group="figure8")
def test_reactive_publishing_matrix_soap(benchmark):
    records = benchmark.pedantic(_run_matrix, args=("soap",), rounds=1, iterations=1)
    _report(benchmark, records, "soap")


@pytest.mark.benchmark(group="figure8")
def test_reactive_publishing_matrix_corba(benchmark):
    records = benchmark.pedantic(_run_matrix, args=("corba",), rounds=1, iterations=1)
    _report(benchmark, records, "corba")
