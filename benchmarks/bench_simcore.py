"""Microbenchmarks of the simulation-core hot paths.

Every experiment in this repository is bottlenecked on three engines:

* the discrete-event **scheduler** (``repro.sim.scheduler``) — every network
  delivery, processing delay, timer and workload arrival is one dispatched
  event;
* the **simulated network** (``repro.net.simnet``) — one delivery per
  message, plus per-message accounting;
* the **codecs** — SOAP envelope serialisation (``repro.soap.envelope``,
  the dominant per-call cost for the SOAP middleware) and CDR marshalling
  (``repro.corba.cdr``) for GIOP.

This file measures each engine in isolation and attaches throughput numbers
(``events_per_second``, ``messages_per_second``, ``envelopes_per_second``,
``values_per_second``) to ``extra_info`` so ``run_all.py`` records them in
the ``BENCH_results.json`` trajectory.  The scheduler-dispatch number is the
one the fleet-scaling acceptance criterion tracks across PRs.

All workloads are deterministic (no RNG, no wall-clock dependence).

Run with:  pytest benchmarks/bench_simcore.py --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro._backend import backend_name
from repro.cluster.presets import (
    FAULT_DRILL_CLIENTS,
    FAULT_DRILL_CLIENTS_QUICK,
    FAULT_DRILL_SERVERS,
    fault_drill_scenario,
)
from repro.corba.cdr import marshal_values, unmarshal_values
from repro.net.latency import loopback_profile
from repro.net.simnet import Address, Network
from repro.sim import Scheduler
from repro.soap.envelope import SoapRequest

_QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

#: Events dispatched by the scheduler microbenchmark.
N_EVENTS = 10_000 if _QUICK else 60_000
#: Messages delivered by the simnet microbenchmark.
N_MESSAGES = 2_000 if _QUICK else 12_000
#: Envelopes / value-lists encoded by the codec microbenchmarks.
N_ENVELOPES = 500 if _QUICK else 3_000
N_CDR = 2_000 if _QUICK else 20_000

_ROUNDS = 1 if _QUICK else 3


def _throughput(benchmark, key: str, count: int) -> None:
    mean = benchmark.stats.stats.mean
    benchmark.extra_info[key] = round(count / mean) if mean > 0 else 0


# -- scheduler ---------------------------------------------------------------


def _drive_scheduler(total_events: int) -> int:
    """A workload shaped like the fleet sweeps: a deep standing heap plus
    self-rescheduling chains (think-time timers, delivery cascades)."""
    scheduler = Scheduler()
    # Half the events form a deep standing queue, scheduled out of order so
    # the heap actually works (deterministic pseudo-shuffle).
    standing = total_events // 2
    for index in range(standing):
        scheduler.schedule(((index * 7919) % standing) * 1e-4 + 1e-6, _noop)
    # The other half are 64 concurrent chains, each dispatch scheduling the
    # next link — the pattern the callback-driven workload clients produce.
    chains = 64
    budget = [total_events - standing]

    def tick() -> None:
        budget[0] -= 1
        if budget[0] > 0:
            scheduler.schedule(0.00025, tick)

    for index in range(min(chains, budget[0])):
        scheduler.schedule(index * 1e-5, tick)
    scheduler.run_until_idle(max_events=total_events * 2 + 10)
    return scheduler.dispatched_count


def _noop() -> None:
    return None


def _churn_scheduler(total_events: int) -> int:
    """Heavy cancellation churn: publication-timer resets at fleet scale.

    Two thirds of scheduled events are cancelled before they run; the
    scheduler must still dispatch the survivors in (time, insertion) order
    without scanning the queue.
    """
    scheduler = Scheduler()
    survivors = 0
    pending = []
    for index in range(total_events):
        event = scheduler.schedule((index % 997) * 1e-4 + 1e-6, _noop)
        pending.append(event)
        if index % 3:
            pending.pop().cancel()
        if index % 100 == 0:
            # The O(1)-or-bust introspection the workload driver leans on.
            scheduler.pending_count
    survivors = scheduler.run_until_idle(max_events=total_events + 10)
    return survivors


@pytest.mark.benchmark(group="simcore-scheduler")
def test_scheduler_dispatch_throughput(benchmark):
    """Events dispatched per second on a fleet-shaped event mix."""
    dispatched = benchmark.pedantic(
        _drive_scheduler, args=(N_EVENTS,), rounds=_ROUNDS, iterations=1
    )
    # The last in-flight link of each chain still dispatches after the
    # budget runs out, so the count lands slightly above the target.
    assert N_EVENTS <= dispatched <= N_EVENTS + 64
    _throughput(benchmark, "events_per_second", dispatched)


@pytest.mark.benchmark(group="simcore-scheduler")
def test_scheduler_cancellation_churn(benchmark):
    """Schedule/cancel churn with periodic pending-count introspection."""
    survivors = benchmark.pedantic(
        _churn_scheduler, args=(N_EVENTS,), rounds=_ROUNDS, iterations=1
    )
    assert survivors > 0
    _throughput(benchmark, "events_per_second", N_EVENTS)


# -- headline aggregate ------------------------------------------------------


@pytest.mark.benchmark(group="simcore-headline")
def test_fleet_events_per_second(benchmark):
    """The headline number: scheduler events per wall-clock second while
    simulating the full 4×256 mixed SOAP/CORBA fault drill — every layer
    (scheduler, simnet, transport, HTTP/GIOP, codecs, faults) in the loop,
    not a microbenchmark.  Tracked per backend (pure vs compiled)."""
    clients = FAULT_DRILL_CLIENTS_QUICK if _QUICK else FAULT_DRILL_CLIENTS

    def run_drill():
        return fault_drill_scenario(clients).run()

    report = benchmark.pedantic(run_drill, rounds=_ROUNDS, iterations=1)

    assert report.events_dispatched > 0
    assert report.total_recency_violations == 0

    _throughput(benchmark, "events_per_second", report.events_dispatched)
    benchmark.extra_info["backend"] = backend_name()
    benchmark.extra_info["clients"] = clients
    benchmark.extra_info["servers"] = FAULT_DRILL_SERVERS
    benchmark.extra_info["events_dispatched"] = report.events_dispatched
    benchmark.extra_info["simulated_duration_s"] = round(report.duration, 5)


# -- simulated network -------------------------------------------------------


def _drive_network(total_messages: int) -> int:
    scheduler = Scheduler()
    network = Network(scheduler, loopback_profile())
    sender = network.add_host("sender")
    receiver = network.add_host("receiver")
    received = [0]

    def on_message(message, host) -> None:
        received[0] += 1

    receiver.bind(80, on_message)
    destination = Address("receiver", 80)
    payload = b"x" * 256
    # Sends trickle in over virtual time (a fleet, not one burst), so the
    # delivery queue stays populated the way a real sweep keeps it.
    batch = 200
    sent = [0]

    def send_batch() -> None:
        for _ in range(batch):
            if sent[0] < total_messages:
                sent[0] += 1
                sender.send(destination, payload)

    for index in range(total_messages // batch + 1):
        scheduler.schedule(index * 1e-3, send_batch)
    scheduler.run_until_idle(max_events=total_messages * 2 + 1000)
    return received[0]


@pytest.mark.benchmark(group="simcore-network")
def test_simnet_delivery_throughput(benchmark):
    """Messages delivered per second through the simulated network."""
    received = benchmark.pedantic(
        _drive_network, args=(N_MESSAGES,), rounds=_ROUNDS, iterations=1
    )
    assert received == N_MESSAGES
    _throughput(benchmark, "messages_per_second", received)


# -- codecs ------------------------------------------------------------------

_SOAP_ARGS = ("hello from the client fleet", 42, 3.5, True)


def _encode_soap(total: int) -> int:
    size = 0
    for index in range(total):
        request = SoapRequest.for_call(
            "echo", _SOAP_ARGS, namespace="urn:sde:EchoService"
        )
        size += len(request.to_xml())
    return size


def _roundtrip_soap(total: int) -> int:
    request = SoapRequest.for_call("echo", _SOAP_ARGS, namespace="urn:sde:EchoService")
    wire = request.to_xml()
    decoded = 0
    for _ in range(total):
        parsed = SoapRequest.from_xml(wire)
        decoded += len(parsed.arguments)
    return decoded


@pytest.mark.benchmark(group="simcore-codec")
def test_soap_encode_throughput(benchmark):
    """SOAP envelopes serialised per second (the SOAP-path hot loop)."""
    size = benchmark.pedantic(
        _encode_soap, args=(N_ENVELOPES,), rounds=_ROUNDS, iterations=1
    )
    assert size > 0
    _throughput(benchmark, "envelopes_per_second", N_ENVELOPES)


@pytest.mark.benchmark(group="simcore-codec")
def test_soap_decode_throughput(benchmark):
    """SOAP envelopes parsed per second (server-side receive path)."""
    decoded = benchmark.pedantic(
        _roundtrip_soap, args=(N_ENVELOPES,), rounds=_ROUNDS, iterations=1
    )
    assert decoded == N_ENVELOPES * len(_SOAP_ARGS)
    _throughput(benchmark, "envelopes_per_second", N_ENVELOPES)


_CDR_VALUES = ("hello from the client fleet", 42, 3.5, True, [1, 2, 3], {"k": "v"})


def _marshal_cdr(total: int) -> int:
    size = 0
    for _ in range(total):
        size += len(marshal_values(_CDR_VALUES))
    return size


@pytest.mark.benchmark(group="simcore-codec")
def test_cdr_marshal_throughput(benchmark):
    """CDR value-lists marshalled per second (the GIOP-path hot loop)."""
    size = benchmark.pedantic(
        _marshal_cdr, args=(N_CDR,), rounds=_ROUNDS, iterations=1
    )
    wire = marshal_values(_CDR_VALUES)
    assert unmarshal_values(wire) == list(_CDR_VALUES)
    assert size == len(wire) * N_CDR
    _throughput(benchmark, "values_per_second", N_CDR)
