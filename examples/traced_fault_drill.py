"""A traced fault drill: causal spans and metrics out of a faulted run.

The same crash + partition drill as :mod:`examples/crash_during_publish`,
but run with the observability layer on (``scenario.run(obs=...)``).  One
flag buys three artifacts:

* **a causal span tree per client call** — the call span, each retry
  attempt with the registry's routing decision (replica, node, version
  tier, policy), the server-side dispatch joined across the wire via the
  in-band trace context (a SOAP header block / GIOP service-context slot),
  and instants for every injected fault and rollout wave;
* **time-series metrics** sampled on the simulated clock — per-node core
  occupancy and stall queues, per-service in-flight calls and recency
  watermark age — attached to ``report.metrics``;
* **exports**: a JSONL span log, a metrics JSON, and a Chrome
  ``trace_event`` file — open ``traced_fault_drill.perfetto.json`` at
  https://ui.perfetto.dev to scrub through the drill on the simulated
  timeline.

On top, the analytics layer answers "explain my p99": the latency profile
decomposes every call's RTT exactly into network / §5.7 stall / core
queue / CPU / retry-backoff components (they sum to the measured RTT with
zero residual — asserted below), shows which component grew in the
top-decile calls, and the declared SLOs (latency, availability, §6
recency) are evaluated with burn-rate alerts onto ``report.slo_results``.

Everything is deterministic: span ids come from sequence counters and
timestamps from virtual time, so two runs of this script produce
byte-identical fingerprints (asserted at the end).

Run with:  python examples/traced_fault_drill.py [output-dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import RetryPolicy, STRING, Scenario, crash, heal, op, partition, restart
from repro.core.sde import SDEConfig
from repro.evolve import rolling, upgrade
from repro.obs import ObsConfig, Observability
from repro.obs.analyze import format_profile
from repro.obs.slo import availability_slo, latency_slo, recency_slo
from repro.obs.slo import format_results

CLIENTS = 24


def build_world() -> Scenario:
    echo = op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)
    echo_loud = op("echo_loud", (("m", STRING),), STRING, body=lambda _s, m: m.upper())
    return (
        Scenario(name="traced-fault-drill", sde_config=SDEConfig(generation_cost=0.02))
        .servers(2)
        .service("Echo", [echo], replicas=2)
        .clients(
            CLIENTS,
            service="Echo",
            calls=6,
            arguments=("hello",),
            think_time=0.01,
            arrival=0.001,
            retry=RetryPolicy(max_attempts=4, timeout=0.08, backoff=0.005),
        )
        .at(0.020, crash("server-1"))
        .at(0.030, partition("server-2"))
        .at(0.040, rolling("Echo", upgrade(add=[echo_loud]), batch_size=1, drain=0.01))
        .at(0.070, heal("server-2"))
        .at(0.080, restart("server-1"))
        .slo(
            latency_slo("echo-latency", threshold_s=0.05, objective=0.9),
            availability_slo("echo-availability", objective=0.999),
            recency_slo("echo-recency"),
        )
    )


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    obs = Observability(ObsConfig(dump_dir=out_dir))
    report = build_world().run(obs=obs)

    print(f"fleet: {len(report.clients)} clients over {len(report.nodes)} servers")
    print(
        f"calls: {report.total_calls} ({report.total_successes} ok), "
        f"{report.total_retried_calls} retried across the crash + partition"
    )

    spans = obs.spans
    by_kind: dict[str, int] = {}
    for span in spans:
        by_kind[span.kind] = by_kind.get(span.kind, 0) + 1
    print(
        f"spans: {obs.tracer.finished_count} finished "
        f"({', '.join(f'{k}={v}' for k, v in sorted(by_kind.items()))})"
    )
    servers = [span for span in spans if span.kind == "server"]
    print(
        f"causality: {len(servers)} server spans joined to client traces "
        "via the in-band wire context"
    )
    metrics = report.metrics
    print(
        f"metrics: {len(metrics.series)} series × {len(metrics.times)} samples "
        f"every {metrics.interval * 1e3:.0f} simulated ms"
    )

    # "Explain my p99": decompose every call's RTT into exact components.
    profile = obs.profile()
    print()
    print("latency attribution (where the simulated time went):")
    print(format_profile(profile))
    print()
    print("SLO verdicts:")
    print(format_results(report.slo_results))
    print()

    jsonl = obs.export_jsonl(out_dir / "traced_fault_drill.spans.jsonl")
    chrome = obs.export_chrome(out_dir / "traced_fault_drill.perfetto.json")
    metrics_path = obs.export_metrics(out_dir / "traced_fault_drill.metrics.json")
    profile_path = obs.export_profile(out_dir / "traced_fault_drill.profile.json")
    print(f"exported: {jsonl}")
    print(f"exported: {chrome}   <- load this at https://ui.perfetto.dev")
    print(f"exported: {metrics_path}")
    print(f"exported: {profile_path}")

    assert report.total_successes == report.total_calls
    assert report.total_recency_violations == 0, "§6 must hold across the drill"
    assert servers and all(span.parent_id is not None for span in servers)
    assert profile.max_residual_ns == 0, "components must sum exactly to each RTT"
    assert all(result.ok for result in report.slo_results if result.name != "echo-latency")

    rerun_obs = Observability()
    build_world().run(obs=rerun_obs)
    assert rerun_obs.span_fingerprint() == obs.span_fingerprint()
    print("determinism: two traced drills produced identical span fingerprints ✓")


if __name__ == "__main__":
    main()
