"""Quickstart: build a live SOAP server and call it while editing it.

This walks through the paper's core workflow (§4), expressed with the
declarative Scenario API (``repro.cluster``):

1. a ``Scenario`` describes the world — one server machine carrying a
   ``Calculator`` service — and ``build()`` stands it up: SDE deploys the
   backend automatically and publishes a minimal WSDL document;
2. distributed methods were declared with ``op(...)``; after a stable
   interval the interface is republished;
3. a client (CDE) connects through the published WSDL and makes calls;
4. the developer keeps editing the *running* server — behaviour changes are
   visible on the very next call, and interface changes are resolved through
   the §5.7/§6 consistency protocol.

Run with:  python examples/quickstart.py
"""

from repro import INT, STRING, Scenario, op
from repro.errors import NonExistentMethodError


def main() -> None:
    # -- 1. describe the world; SDE deploys the service automatically --------
    world = (
        Scenario(name="quickstart")
        .service(
            "Calculator",
            [
                op("add", (("a", INT), ("b", INT)), INT,
                   body=lambda self, a, b: a + b),
                op("greet", (("name", STRING),), STRING,
                   body=lambda self, name: f"hello {name}"),
            ],
        )
        .build()
    )
    manager_interface = world.nodes[0].manager_interface
    print("Managed servers:", manager_interface.managed_class_names())

    # -- 2. let the stable-change publisher run (§5.6) ------------------------
    world.settle()
    status = manager_interface.publication_status("Calculator")
    print(f"Published interface version {status.version} at {status.document_url}")
    print()
    print(manager_interface.view_live_interface("Calculator"))
    print()

    # -- 3. connect a client through the published WSDL ----------------------
    client = world.connect("Calculator")
    print("add(2, 3)      =", client.invoke("add", 2, 3))
    print("greet('world') =", client.invoke("greet", "world"))

    # -- 4a. live behaviour change: takes effect on the next call ------------
    calculator = world.dynamic_class("Calculator")
    calculator.method("add").set_body(lambda self, a, b: (a + b) * 100)
    print("add(2, 3) after live body edit =", client.invoke("add", 2, 3))

    # -- 4b. live interface change: the client's next stale call triggers the
    #        §5.7 reactive publication and the §6 client-side refresh ---------
    calculator.method("greet").rename("welcome")
    try:
        client.invoke("greet", "world")
    except NonExistentMethodError as error:
        print("stale call rejected:", error)
    print("client view now:", client.description.operation_names())
    print("welcome('world') =", client.invoke("welcome", "world"))

    entry = world.cde.debugger.latest()
    print("debugger recorded:", entry)


if __name__ == "__main__":
    main()
