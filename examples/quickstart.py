"""Quickstart: build a live SOAP server and call it while editing it.

This walks through the paper's core workflow (§4):

1. the developer extends ``SOAPServer`` — SDE deploys everything automatically
   and publishes a minimal WSDL document;
2. distributed methods are added; after a stable interval the interface is
   republished;
3. a client (CDE) connects through the published WSDL and makes calls;
4. the developer keeps editing the *running* server — behaviour changes are
   visible on the very next call, and interface changes are resolved through
   the §5.7/§6 consistency protocol.

Run with:  python examples/quickstart.py
"""

from repro.errors import NonExistentMethodError
from repro.rmitypes import INT, STRING
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


def main() -> None:
    testbed = LiveDevelopmentTestbed()

    # -- 1. create the server class; SDE deploys it automatically ------------
    calculator, _instance = testbed.create_soap_server(
        "Calculator",
        [
            OperationSpec("add", (("a", INT), ("b", INT)), INT,
                          body=lambda self, a, b: a + b),
            OperationSpec("greet", (("name", STRING),), STRING,
                          body=lambda self, name: f"hello {name}"),
        ],
    )
    print("Managed servers:", testbed.manager_interface.managed_class_names())

    # -- 2. let the stable-change publisher run (§5.6) ------------------------
    testbed.settle()
    status = testbed.manager_interface.publication_status("Calculator")
    print(f"Published interface version {status.version} at {status.document_url}")
    print()
    print(testbed.manager_interface.view_live_interface("Calculator"))
    print()

    # -- 3. connect a client through the published WSDL ----------------------
    client = testbed.connect_soap_client("Calculator")
    print("add(2, 3)      =", client.invoke("add", 2, 3))
    print("greet('world') =", client.invoke("greet", "world"))

    # -- 4a. live behaviour change: takes effect on the next call ------------
    calculator.method("add").set_body(lambda self, a, b: (a + b) * 100)
    print("add(2, 3) after live body edit =", client.invoke("add", 2, 3))

    # -- 4b. live interface change: the client's next stale call triggers the
    #        §5.7 reactive publication and the §6 client-side refresh ---------
    calculator.method("greet").rename("welcome")
    try:
        client.invoke("greet", "world")
    except NonExistentMethodError as error:
        print("stale call rejected:", error)
    print("client view now:", client.description.operation_names())
    print("welcome('world') =", client.invoke("welcome", "world"))

    entry = testbed.cde.debugger.latest()
    print("debugger recorded:", entry)


if __name__ == "__main__":
    main()
