"""A CORBA mail service developed live — the paper's own future-work workload.

Section 8 mentions: "We are currently implementing a medium-sized mail
service application in JPie using CDE and SDE."  This example builds that
application on the CORBA subsystem:

* a ``MailService`` server class with user-defined struct types, developed
  incrementally while a client stays connected over IIOP;
* the published CORBA-IDL document and IOR are retrieved over HTTP exactly as
  in Figure 2;
* at the end of the session the dynamic server is exported to a static
  OpenORB-style server (§7), and the same client code runs against it.

Run with:  python examples/corba_mail_service.py
"""

from repro.corba import CorbaServiceDefinition, StaticCorbaClient, StaticCorbaServer
from repro.interface import Parameter
from repro.jpie import export_operation_table
from repro.rmitypes import BOOLEAN, FieldDef, INT, STRING, ArrayType, StructType
from repro.testbed import LiveDevelopmentTestbed


MESSAGE = StructType(
    "Message",
    (
        FieldDef("sender", STRING),
        FieldDef("recipient", STRING),
        FieldDef("subject", STRING),
        FieldDef("body", STRING),
    ),
)


def main() -> None:
    testbed = LiveDevelopmentTestbed()
    environment = testbed.environment
    sde = testbed.sde

    # -- build the mail service incrementally, starting from an empty class ---
    mail = environment.create_class("MailService", superclass=sde.corba_server_class)
    mail.declare_struct(MESSAGE)
    mail.add_field("sent", INT, 0)

    state: dict[str, list[dict]] = {}

    def send(self, message):
        state.setdefault(message["recipient"], []).append(message)
        self.set_field("sent", self.get_field("sent") + 1)
        return True

    def inbox_subjects(self, user):
        return [message["subject"] for message in state.get(user, [])]

    mail.add_method("send", (Parameter("message", MESSAGE),), BOOLEAN, body=send, distributed=True)
    mail.add_method(
        "inbox_subjects", (Parameter("user", STRING),), ArrayType(STRING),
        body=inbox_subjects, distributed=True,
    )
    mail.new_instance()
    testbed.settle()

    publisher = sde.managed_server("MailService").publisher
    print("published CORBA-IDL at", publisher.document_url)
    print("published IOR at     ", publisher.ior_url)
    print()
    print(testbed.manager_interface.view_interface_document("MailService"))

    # -- a CDE client connects via the published IDL + IOR --------------------
    client = testbed.connect_corba_client("MailService")
    client.invoke("send", {"sender": "kjg", "recipient": "sajeeva",
                           "subject": "SDE draft", "body": "please review"})
    client.invoke("send", {"sender": "bem", "recipient": "sajeeva",
                           "subject": "CDE figures", "body": "attached"})
    print("sajeeva's inbox:", client.invoke("inbox_subjects", "sajeeva"))

    # -- live extension: add a word-count operation while connected -----------
    mail.add_method(
        "count_words", (Parameter("user", STRING),), INT,
        body=lambda self, user: sum(len(m["body"].split()) for m in state.get(user, [])),
        distributed=True,
    )
    testbed.settle()
    client.refresh()
    print("words addressed to sajeeva:", client.invoke("count_words", "sajeeva"))

    # -- end of development: export to a static CORBA server (§7) -------------
    instance = sde.managed_server("MailService").instance
    definition = CorbaServiceDefinition("MailServiceRelease", "urn:mail:release")
    definition.structs.append(MESSAGE)
    for signature, implementation in export_operation_table(mail, instance):
        definition.add_operation(signature, implementation)
    static_server = StaticCorbaServer(testbed.server_host, 9500, definition)
    static_server.start()

    static_client = StaticCorbaClient(testbed.client_host)
    stub = static_client.connect(static_server.idl_document, static_server.ior)
    print("static export inbox:", stub.inbox_subjects("sajeeva"))
    print("static export word count:", stub.count_words("sajeeva"))


if __name__ == "__main__":
    main()
