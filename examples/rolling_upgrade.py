"""Rolling upgrade: a breaking interface change crosses a live fleet.

The paper's whole point is that interfaces evolve *while clients keep
calling* — but not every publication is equal.  This example pushes a
**breaking** change (``echo`` renamed to ``echo_v2``) through a replicated
service, replica by replica, with :mod:`repro.evolve`:

* a 2-server world runs an Echo service with 2 replicas; 16 clients call
  continuously;
* at t=0.05 a ``rolling`` upgrade starts: each replica in turn gets the
  new operation, loses the old one, and republishes its WSDL — the typed
  diff engine classifies each wave from the published documents;
* **version-aware routing** keeps every client on replicas still
  compatible with the stubs it bound, for as long as any remains — so the
  fleet rides out most of the rollout fault-free;
* once the last compatible replica upgrades, each client's next call gets
  the §5.7 "Non existent Method" stale fault — never a silently wrong
  answer — whereupon it re-fetches the WSDL (a *rebind*), discovers the
  upgrade's declared successor operation, and resumes successfully;
* routing also enforces the §6 recency guarantee across the deliberately
  divergent replica versions: once a client has seen v3 it is never
  routed back to a replica still publishing v2 — the report's
  recency-violation counter stays exactly 0.

Run with:  python examples/rolling_upgrade.py
"""

from repro import STRING, Scenario, op, rolling, upgrade
from repro.core.sde import SDEConfig

CLIENTS = 16

ECHO = op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)
ECHO_V2 = op(
    "echo_v2", (("message", STRING),), STRING, body=lambda _self, m: m + "!"
)
BREAKING = upgrade(add=[ECHO_V2], remove=["echo"], successors={"echo": "echo_v2"})


def build_world() -> Scenario:
    return (
        Scenario(name="rolling-upgrade", sde_config=SDEConfig(generation_cost=0.02))
        .servers(2)
        .service("Echo", [ECHO], replicas=2)
        .clients(
            CLIENTS,
            service="Echo",
            calls=10,
            arguments=("hello",),
            think_time=0.02,   # keep calling straight through the rollout
            arrival=0.002,
        )
        .at(0.05, rolling("Echo", BREAKING, batch_size=1, drain=0.04))
    )


def main() -> None:
    report = build_world().run()

    (rollout,) = report.rollouts
    print(f"fleet: {len(report.clients)} clients over {len(report.nodes)} servers")
    print(
        f"rollout: {rollout.strategy} upgrade of {rollout.service!r}, "
        f"classified {rollout.classification} from the published WSDL"
    )
    for wave in rollout.waves:
        (delta,) = wave.deltas
        print(
            f"  wave {wave.index}: replica {wave.replicas[0]} in "
            f"{wave.duration:.3f}s — removed {delta.removed}, added {delta.added}"
        )
    print(
        f"rollout window: {rollout.calls_during} calls, "
        f"{rollout.stale_faults_during} stale faults "
        f"(rate {rollout.stale_fault_rate:.1%}), {rollout.rebinds_during} rebinds"
    )

    echo = report.service("Echo")
    print(f"calls by published version: {echo.calls_by_version}")
    print(
        f"fleet outcome: {report.total_successes} ok, "
        f"{report.total_stale_faults} stale faults, "
        f"{report.total_rebinds} rebinds, "
        f"{report.total_other_faults} other faults"
    )
    print(f"recency violations (must be 0): {report.total_recency_violations}")

    assert report.total_other_faults == 0, "a breaking upgrade must never be silent"
    assert report.total_rebinds == report.total_stale_faults
    assert report.total_recency_violations == 0
    assert rollout.classification == "breaking"
    print("OK: stale-fault + rebind observed; nothing silently wrong; §6 held.")


if __name__ == "__main__":
    main()
