"""Crash during publish: the §6 recency guarantee survives failover.

The paper's stall protocol (§5.7) keeps every *published* interface at
least as recent as the live one; §6 derives the client-side guarantee that
nobody ever observes an interface older than one they already saw.  Those
claims are only interesting when things go wrong — so this example makes
things go wrong, deterministically, with :mod:`repro.faults`:

* a 2-server world runs an Echo service with 2 replicas;
* a fleet of 32 clients calls continuously with a failover
  :class:`~repro.faults.RetryPolicy` (aborted or timed-out calls are
  reissued and the registry routes them around dead replicas);
* mid-run, the developer edits the service and forces publication on every
  replica — and **while that publication's generation is still running**,
  one replica's machine crashes;
* in-flight calls to the dead machine fail fast, the fleet fails over to
  the surviving replica, the machine later restarts and traffic returns.

The report proves the point: every call completes, the retries and the
crashed node's downtime/recovery latency are accounted, and the per-client
recency-violation counter — which increments whenever a successful reply
is served from a published interface older than one that client already
observed — stays exactly 0 across the failover.

Run with:  python examples/crash_during_publish.py
"""

from repro import RetryPolicy, STRING, Scenario, crash, edit, op, publish, restart
from repro.core.sde import SDEConfig

CLIENTS = 32


def build_world() -> Scenario:
    echo = op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)
    return (
        Scenario(name="crash-during-publish", sde_config=SDEConfig(generation_cost=0.05))
        .servers(2)
        .service("Echo", [echo], replicas=2)
        .clients(
            CLIENTS,
            service="Echo",
            calls=10,
            arguments=("hello",),
            think_time=0.0,    # continuous calling: always in flight at crash time
            arrival=0.002,     # staggered starts desynchronise the fleet
            retry=RetryPolicy(max_attempts=4, timeout=0.5, backoff=0.005),
        )
        .at(0.050, edit("Echo", op("added_mid_run")))
        .at(0.060, publish("Echo"))      # generation completes around t=0.11 ...
        .at(0.080, crash("server-1"))    # ... and the crash lands mid-generation
        .at(0.150, restart("server-1"))
    )


def main() -> None:
    report = build_world().run()

    print(f"fleet: {len(report.clients)} clients over {len(report.nodes)} servers")
    print(
        f"calls: {report.total_calls} ({report.total_successes} ok), "
        f"simulated duration {report.duration:.3f}s"
    )
    print(
        f"failover: {report.total_failed_attempts} failed attempts, "
        f"{report.total_retried_calls} retried, "
        f"{report.total_abandoned_calls} abandoned"
    )
    for node in report.nodes:
        if node.outages:
            recovery = (
                f"{node.recovery_latency_s:.4f}s"
                if node.recovery_latency_s is not None
                else "n/a"
            )
            print(
                f"  {node.name}: {node.outages} outage(s), "
                f"downtime {node.downtime_s:.3f}s, recovery latency {recovery}"
            )
    echo = report.service("Echo")
    print(
        "replica versions after the drill:",
        [replica.interface_version for replica in echo.replicas],
    )
    percentiles = report.rtt_percentiles
    print(
        f"RTT p50={percentiles['p50']:.5f}s "
        f"p95={percentiles['p95']:.5f}s p99={percentiles['p99']:.5f}s"
    )

    assert report.total_successes == report.total_calls
    assert report.total_retried_calls > 0, "the crash must have forced failover"
    assert report.total_recency_violations == 0, "§6 must hold across failover"
    print("recency: zero violations across replica failover ✓")

    rerun = build_world().run()
    assert rerun.all_rtts == report.all_rtts, "fault drills must be deterministic"
    print("determinism: two crash drills produced identical RTT sequences ✓")


if __name__ == "__main__":
    main()
