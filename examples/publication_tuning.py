"""Tuning the interface-publication mechanism (§5.6) and inspecting §5.7.

The SDE Manager Interface lets the developer control how eagerly the server
interface is republished.  This example replays the same editing burst under
three publication timeouts and under the two alternative strategies the paper
rejects, printing how many (and which) interface versions each configuration
published — the data behind the E4 ablation.  It finishes with the rogue
client scenario of §5.7.

Run with:  python examples/publication_tuning.py
"""

from repro.core.sde import SDEConfig
from repro.core.sde.publisher import (
    STRATEGY_CHANGE_DRIVEN,
    STRATEGY_POLLING,
    STRATEGY_STABLE_TIMEOUT,
)
from repro.errors import NonExistentMethodError
from repro.experiments.stale_flood import run_stale_flood
from repro.rmitypes import INT
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


def editing_burst(testbed, service, edits=6, gap=0.6):
    """Simulate a developer adding methods in quick succession."""
    for index in range(edits):
        service.add_method(
            f"operation_{index}", (), INT, body=lambda self: 0, distributed=True
        )
        testbed.run_for(gap)
    testbed.run_for(20.0)


def run_configuration(label, strategy, timeout):
    testbed = LiveDevelopmentTestbed(
        sde_config=SDEConfig(
            publication_timeout=timeout,
            generation_cost=0.25,
            publication_strategy=strategy,
            poll_interval=8.0,
        )
    )
    service, _instance = testbed.create_soap_server("EditedService", [])
    editing_burst(testbed, service)
    publisher = testbed.sde.managed_server("EditedService").publisher
    print(
        f"{label:36s} publications={publisher.stats.publications:2d} "
        f"generations={publisher.stats.generations:2d} "
        f"timer_resets={publisher.stats.timer_resets:2d} "
        f"current={publisher.is_published_current()}"
    )


def main() -> None:
    print("== publication strategies over one editing burst (6 edits) ==")
    run_configuration("stable timeout 2s (paper default)", STRATEGY_STABLE_TIMEOUT, 2.0)
    run_configuration("stable timeout 5s", STRATEGY_STABLE_TIMEOUT, 5.0)
    run_configuration("stable timeout 10s", STRATEGY_STABLE_TIMEOUT, 10.0)
    run_configuration("change driven (rejected in §5.6)", STRATEGY_CHANGE_DRIVEN, 5.0)
    run_configuration("polling every 8s (rejected in §5.6)", STRATEGY_POLLING, 5.0)

    print("\n== §5.7: a rogue client cannot force needless IDL generation ==")
    flood = run_stale_flood(stale_calls=40)
    print(
        f"stale calls sent: {flood.stale_calls_sent}, faults returned: "
        f"{flood.non_existent_method_faults}, interface generations: {flood.generations}"
    )

    print("\n== manual force-publication via the SDE Manager Interface ==")
    testbed = LiveDevelopmentTestbed(sde_config=SDEConfig(publication_timeout=30.0))
    service, _instance = testbed.create_soap_server(
        "SlowService",
        [OperationSpec("ping", (), INT, body=lambda self: 1)],
    )
    binding = None
    try:
        testbed.manager_interface.force_publication("SlowService")
        testbed.run_for(1.0)
        binding = testbed.connect_soap_client("SlowService")
        print("ping() =", binding.invoke("ping"))
    except NonExistentMethodError:
        print("unexpected stale call")
    status = testbed.manager_interface.publication_status("SlowService")
    print("published version:", status.version, "timer running:", status.timer_running)


if __name__ == "__main__":
    main()
