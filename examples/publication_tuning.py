"""Tuning the interface-publication mechanism (§5.6) and inspecting §5.7.

The SDE Manager Interface lets the developer control how eagerly the server
interface is republished.  This example replays the same editing burst under
three publication timeouts and under the two alternative strategies the paper
rejects, printing how many (and which) interface versions each configuration
published — the data behind the E4 ablation.  Each configuration is one
declarative ``Scenario``: the editing burst is a timeline of ``edit(...)``
actions and ``run(until=...)`` drives the world with no clients attached,
so publication happens organically (stability timers, polling).  It
finishes with the rogue client scenario of §5.7.

Run with:  python examples/publication_tuning.py
"""

from repro import INT, Scenario, op
from repro.cluster import edit
from repro.core.sde import SDEConfig
from repro.core.sde.publisher import (
    STRATEGY_CHANGE_DRIVEN,
    STRATEGY_POLLING,
    STRATEGY_STABLE_TIMEOUT,
)
from repro.errors import NonExistentMethodError
from repro.experiments.stale_flood import run_stale_flood

EDITS = 6
EDIT_GAP = 0.6


def run_configuration(label, strategy, timeout):
    scenario = Scenario(
        name="publication-tuning",
        sde_config=SDEConfig(
            publication_timeout=timeout,
            generation_cost=0.25,
            publication_strategy=strategy,
            poll_interval=8.0,
        ),
    ).service("EditedService", [])
    # A developer adding methods in quick succession, as timeline actions.
    for index in range(EDITS):
        scenario.at(
            index * EDIT_GAP,
            edit("EditedService", op(f"operation_{index}", (), INT, body=lambda self: 0)),
        )
    runtime = scenario.build()
    runtime.run(until=EDITS * EDIT_GAP + 20.0)
    publisher = runtime.replicas("EditedService")[0].publisher
    print(
        f"{label:36s} publications={publisher.stats.publications:2d} "
        f"generations={publisher.stats.generations:2d} "
        f"timer_resets={publisher.stats.timer_resets:2d} "
        f"current={publisher.is_published_current()}"
    )


def main() -> None:
    print("== publication strategies over one editing burst (6 edits) ==")
    run_configuration("stable timeout 2s (paper default)", STRATEGY_STABLE_TIMEOUT, 2.0)
    run_configuration("stable timeout 5s", STRATEGY_STABLE_TIMEOUT, 5.0)
    run_configuration("stable timeout 10s", STRATEGY_STABLE_TIMEOUT, 10.0)
    run_configuration("change driven (rejected in §5.6)", STRATEGY_CHANGE_DRIVEN, 5.0)
    run_configuration("polling every 8s (rejected in §5.6)", STRATEGY_POLLING, 5.0)

    print("\n== §5.7: a rogue client cannot force needless IDL generation ==")
    flood = run_stale_flood(stale_calls=40)
    print(
        f"stale calls sent: {flood.stale_calls_sent}, faults returned: "
        f"{flood.non_existent_method_faults}, interface generations: {flood.generations}"
    )

    print("\n== manual force-publication via the SDE Manager Interface ==")
    world = (
        Scenario(name="slow-publisher", sde_config=SDEConfig(publication_timeout=30.0))
        .service("SlowService", [op("ping", (), INT, body=lambda self: 1)])
        .build()
    )
    try:
        world.publish("SlowService")
        world.world.run_for(1.0)
        binding = world.connect("SlowService")
        print("ping() =", binding.invoke("ping"))
    except NonExistentMethodError:
        print("unexpected stale call")
    status = world.nodes[0].manager_interface.publication_status("SlowService")
    print("published version:", status.version, "timer running:", status.timer_running)


if __name__ == "__main__":
    main()
