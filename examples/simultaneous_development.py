"""Live, simultaneous client-server development (§6 of the paper).

Two developers work at the same time: one evolves the server interface while
the other writes client code against a CDE-managed stub class.  The script
demonstrates the full §5.7 + §6 loop:

* the server developer renames a distributed method while the client is
  actively calling it;
* the client's stale call stalls on the server until the publisher has caught
  up, then fails with "Non existent Method";
* CDE refreshes the client's view (the stub class is rewritten in place), the
  JPie debugger shows the error together with the interface diff, and the
  developer uses 'try again' after adapting.

Run with:  python examples/simultaneous_development.py
"""

from repro.errors import NonExistentMethodError
from repro.rmitypes import DOUBLE, INT, STRING
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


def main() -> None:
    testbed = LiveDevelopmentTestbed()

    # -- the server developer starts an order service -------------------------
    orders, _instance = testbed.create_soap_server(
        "OrderService",
        [
            OperationSpec(
                "price", (("quantity", INT), ("unit_price", DOUBLE)), DOUBLE,
                body=lambda self, quantity, unit_price: quantity * unit_price,
            ),
            OperationSpec(
                "status", (("order_id", INT),), STRING,
                body=lambda self, order_id: f"order {order_id}: packed",
            ),
        ],
    )
    testbed.settle()

    # -- the client developer builds against a live stub class ----------------
    binding = testbed.connect_soap_client("OrderService")
    stubs = testbed.cde.create_stub_class(binding)
    order_client = stubs.new_stub_instance()
    print("client stub operations:", stubs.operation_names)
    print("price(3, 9.99)  =", order_client.price(3, 9.99))
    print("status(17)      =", order_client.status(17))

    # -- meanwhile, the server developer renames price -> quote and changes
    #    its signature to include a discount ---------------------------------
    from repro.interface import Parameter

    price = orders.method("price")
    price.rename("quote")
    price.set_parameters(
        (Parameter("quantity", INT), Parameter("unit_price", DOUBLE), Parameter("discount", DOUBLE))
    )
    price.set_body(lambda self, quantity, unit_price, discount: quantity * unit_price * (1 - discount))

    # -- the client developer, unaware, keeps calling the old operation -------
    try:
        order_client.price(3, 9.99)
    except NonExistentMethodError as error:
        print("\nstale call rejected by the server:", error)

    # The reactive update already refreshed the stub class (§6).
    print("client stub operations now:", stubs.operation_names)
    entry = testbed.cde.debugger.latest()
    print("debugger entry:", entry)
    print("  context:", entry.context["diff"])

    # -- the client developer adapts to the new signature and retries ---------
    print("quote(3, 9.99, 0.10) =", order_client.quote(3, 9.99, 0.10))

    # Recency guarantee bookkeeping (checked by the Figure 8 experiment):
    record = binding.guarantee_records[-1]
    print(
        f"\nrecency guarantee: client refreshed to version "
        f"{record.client_version_after_refresh} >= server's {record.server_version} -> "
        f"{'satisfied' if record.satisfied else 'VIOLATED'}"
    )


if __name__ == "__main__":
    main()
