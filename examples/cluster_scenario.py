"""A whole N-server × M-client world in one declarative expression.

The ROADMAP's scaling question — what happens when a replicated, mixed
SOAP/CORBA service fleet serves hundreds of concurrent clients while a
developer edits the running servers — used to take a page of hand-wired
testbed setup.  With the Scenario API it is one ≤ 20-line expression:

* 4 server machines, each its own SDE;
* two echo services (one per middleware), 2 replicas each, round-robin
  replica routing through the service registry;
* 256 clients, half SOAP half CORBA, assigned by deterministic weighted
  interleave;
* a mid-run developer action: edit the SOAP service on every replica,
  then force publication — while the fleet keeps calling.

The run is fully deterministic: executing the same scenario twice yields
identical per-call RTT sequences (asserted at the end).

Run with:  python examples/cluster_scenario.py
"""

from repro import STRING, Scenario, edit, op, publish
from repro.core.sde import SDEConfig

CLIENTS = 256


def build_world() -> Scenario:
    echo = op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)
    return (
        Scenario(name="mixed-cluster", sde_config=SDEConfig(generation_cost=0.02))
        .servers(4)
        .service("EchoSoap", [echo], technology="soap", replicas=2)
        .service("EchoCorba", [echo], technology="corba", replicas=2)
        .clients(
            CLIENTS,
            protocol_mix={"soap": 0.5, "corba": 0.5},
            calls=3,
            operation="echo",
            arguments=("hello fleet",),
            think_time=0.02,
        )
        .at(0.02, edit("EchoSoap", op("added_mid_run")))
        .at(0.04, publish("EchoSoap"))
    )


def main() -> None:
    report = build_world().run()

    print(f"fleet: {len(report.clients)} clients over {len(report.nodes)} servers")
    print(
        f"calls: {report.total_calls} ({report.total_successes} ok), "
        f"simulated duration {report.duration:.3f}s, "
        f"throughput {report.throughput:.0f} calls/s"
    )
    for service in report.services:
        rtts = report.rtts_for(service.name)
        print(
            f"  {service.name:10s} [{service.technology:5s}] "
            f"replicas={service.replica_count} policy={service.policy} "
            f"routed={service.calls_routed} "
            f"mean RTT={sum(rtts) / len(rtts):.5f}s "
            f"publications(mid-run)={service.publications} "
            f"version={service.interface_version}"
        )
    per_replica = {
        service.name: [replica.calls_routed for replica in service.replicas]
        for service in report.services
    }
    print("round-robin balance per service:", per_replica)

    rerun = build_world().run()
    assert rerun.all_rtts == report.all_rtts, "scenario runs must be deterministic"
    print("determinism: two runs produced identical RTT sequences ✓")


if __name__ == "__main__":
    main()
