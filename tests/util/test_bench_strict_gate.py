"""Units for the benchmark runner's regression detection and --strict gate.

``benchmarks/run_all.py`` is a script, not a package module, so it is loaded
from its file path.  These tests pin the classification logic the CI perf
gate relies on:

* wall-clock slowdowns corroborated by deterministic metrics (grown or
  shrunk simulated work) are regressions and fail ``--strict`` runs;
* identical simulated work marks the candidate ``suppressed`` — an
  informational note only, even under ``--strict`` (wall clock alone
  swings 2x between machines on unchanged code);
* wall-clock-only slowdowns never fail strict runs either.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

RUN_ALL_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "run_all.py"

_spec = importlib.util.spec_from_file_location("bench_run_all", RUN_ALL_PATH)
run_all = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(run_all)


def _bench(name: str, wall: float, **extra) -> dict:
    return {"name": name, "group": None, "wall_clock_mean_s": wall, "extra_info": extra}


def _trajectory(*benches: dict, quick: bool = False) -> dict:
    return {"runs": [{"quick": quick, "benchmarks": list(benches)}]}


class TestFindRegressions:
    def test_no_previous_run_means_no_candidates(self):
        records = [_bench("b", 10.0, events_dispatched=100)]
        assert run_all.find_regressions(records, {"runs": []}, quick=False) == []

    def test_small_slowdown_below_thresholds_ignored(self):
        before = _trajectory(_bench("b", 1.0, events_dispatched=100))
        records = [_bench("b", 1.04, events_dispatched=200)]
        assert run_all.find_regressions(records, before, quick=False) == []

    def test_grown_workload_corroborates(self):
        before = _trajectory(_bench("b", 1.0, events_dispatched=100))
        records = [_bench("b", 2.0, events_dispatched=200)]
        [candidate] = run_all.find_regressions(records, before, quick=False)
        assert candidate["deterministic_metrics"] == {
            "events_dispatched": {"previous": 100.0, "current": 200.0}
        }
        assert "suppressed" not in candidate
        assert "workload_shrank" not in candidate

    def test_shrunk_workload_is_flagged_as_code_slowdown(self):
        before = _trajectory(_bench("b", 1.0, events_dispatched=200))
        records = [_bench("b", 2.0, events_dispatched=100)]
        [candidate] = run_all.find_regressions(records, before, quick=False)
        assert candidate["workload_shrank"] is True
        assert "events_dispatched" in candidate["deterministic_metrics"]

    def test_identical_workload_is_suppressed(self):
        before = _trajectory(
            _bench("b", 1.0, events_dispatched=100, simulated_duration_s=0.25)
        )
        records = [_bench("b", 2.0, events_dispatched=100, simulated_duration_s=0.25)]
        [candidate] = run_all.find_regressions(records, before, quick=False)
        assert candidate["suppressed"] is True
        assert "deterministic_metrics" not in candidate

    def test_no_deterministic_metrics_stays_wall_clock_only(self):
        before = _trajectory(_bench("b", 1.0))
        records = [_bench("b", 2.0)]
        [candidate] = run_all.find_regressions(records, before, quick=False)
        assert "suppressed" not in candidate
        assert "deterministic_metrics" not in candidate

    def test_quick_and_full_runs_are_not_comparable(self):
        before = _trajectory(_bench("b", 1.0, events_dispatched=100), quick=True)
        records = [_bench("b", 5.0, events_dispatched=500)]
        assert run_all.find_regressions(records, before, quick=False) == []

    def test_deterministic_prefix_keys_participate(self):
        before = _trajectory(_bench("b", 1.0, deterministic_queue_depth=10))
        records = [_bench("b", 2.0, deterministic_queue_depth=40)]
        [candidate] = run_all.find_regressions(records, before, quick=False)
        assert "deterministic_queue_depth" in candidate["deterministic_metrics"]


class TestStrictFailures:
    def test_only_workload_change_candidates_fail(self):
        grown = {"name": "a", "deterministic_metrics": {"events_dispatched": {}}}
        shrunk = {
            "name": "b",
            "deterministic_metrics": {"events_dispatched": {}},
            "workload_shrank": True,
        }
        identical = {"name": "c", "suppressed": True}
        wall_only = {"name": "d"}
        failures = run_all.strict_failures([grown, shrunk, identical, wall_only])
        assert [c["name"] for c in failures] == ["a", "b"]

    def test_identical_work_slowdown_stays_a_note(self):
        """Empirically, a 2x wall-clock swing with identical simulated work
        happens on unchanged code across machines — strict must not flake."""
        assert run_all.strict_failures([{"name": "c", "suppressed": True}]) == []

    def test_wall_clock_only_never_fails_strict(self):
        assert run_all.strict_failures([{"name": "c"}]) == []

    def test_empty_candidates(self):
        assert run_all.strict_failures([]) == []
