"""Tests for deterministic identifier generation."""

from repro.util.ids import IdGenerator, fresh_id, reset_global_ids


class TestIdGenerator:
    def test_sequential_ids_per_prefix(self):
        gen = IdGenerator()
        assert gen.next("request") == "request-1"
        assert gen.next("request") == "request-2"
        assert gen.next("request") == "request-3"

    def test_independent_prefixes(self):
        gen = IdGenerator()
        gen.next("request")
        assert gen.next("timer") == "timer-1"
        assert gen.next("request") == "request-2"

    def test_peek_reports_issued_count_without_consuming(self):
        gen = IdGenerator()
        gen.next("msg")
        gen.next("msg")
        assert gen.peek("msg") == 2
        assert gen.next("msg") == "msg-3"

    def test_peek_on_unused_prefix_is_zero(self):
        gen = IdGenerator()
        assert gen.peek("nothing") == 0

    def test_reset_clears_counters(self):
        gen = IdGenerator()
        gen.next("a")
        gen.reset()
        assert gen.next("a") == "a-1"


class TestGlobalGenerator:
    def test_fresh_id_uses_shared_counter(self):
        reset_global_ids()
        first = fresh_id("global")
        second = fresh_id("global")
        assert first == "global-1"
        assert second == "global-2"

    def test_reset_global_ids(self):
        fresh_id("x")
        reset_global_ids()
        assert fresh_id("x") == "x-1"
