"""Tests for the listener mix-in."""

import pytest

from repro.util.listenable import Listenable


class TestRegistration:
    def test_listeners_called_in_registration_order(self):
        source = Listenable()
        calls = []
        source.add_listener(lambda: calls.append("first"))
        source.add_listener(lambda: calls.append("second"))
        source.notify()
        assert calls == ["first", "second"]

    def test_duplicate_registration_ignored(self):
        source = Listenable()
        calls = []
        listener = lambda: calls.append(1)  # noqa: E731
        source.add_listener(listener)
        source.add_listener(listener)
        source.notify()
        assert calls == [1]

    def test_remove_listener(self):
        source = Listenable()
        calls = []
        listener = lambda: calls.append(1)  # noqa: E731
        source.add_listener(listener)
        source.remove_listener(listener)
        source.notify()
        assert calls == []

    def test_remove_unknown_listener_is_noop(self):
        source = Listenable()
        source.remove_listener(lambda: None)

    def test_listeners_property_is_snapshot(self):
        source = Listenable()
        listener = lambda: None  # noqa: E731
        source.add_listener(listener)
        snapshot = source.listeners
        source.remove_listener(listener)
        assert listener in snapshot


class TestNotification:
    def test_arguments_forwarded(self):
        source = Listenable()
        received = []
        source.add_listener(lambda *args, **kwargs: received.append((args, kwargs)))
        source.notify(1, 2, key="value")
        assert received == [((1, 2), {"key": "value"})]

    def test_failing_listener_does_not_block_others(self):
        source = Listenable()
        calls = []

        def bad():
            raise RuntimeError("listener failed")

        source.add_listener(bad)
        source.add_listener(lambda: calls.append("ran"))
        with pytest.raises(RuntimeError, match="listener failed"):
            source.notify()
        assert calls == ["ran"]

    def test_first_exception_is_reraised(self):
        source = Listenable()

        def first():
            raise ValueError("first")

        def second():
            raise RuntimeError("second")

        source.add_listener(first)
        source.add_listener(second)
        with pytest.raises(ValueError, match="first"):
            source.notify()
