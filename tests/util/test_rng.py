"""Tests for the deterministic random source."""

from repro.util.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10_000) for _ in range(5)] != [b.randint(0, 10_000) for _ in range(5)]

    def test_fork_is_deterministic_and_independent(self):
        a = DeterministicRng(3).fork("latency")
        b = DeterministicRng(3).fork("latency")
        c = DeterministicRng(3).fork("workload")
        seq_a = [a.uniform(0, 1) for _ in range(5)]
        seq_b = [b.uniform(0, 1) for _ in range(5)]
        seq_c = [c.uniform(0, 1) for _ in range(5)]
        assert seq_a == seq_b
        assert seq_a != seq_c


class TestDistributions:
    def test_uniform_bounds(self):
        rng = DeterministicRng(0)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_bounds(self):
        rng = DeterministicRng(0)
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_and_sample(self):
        rng = DeterministicRng(0)
        items = ["a", "b", "c", "d"]
        assert rng.choice(items) in items
        sample = rng.sample(items, 2)
        assert len(sample) == 2
        assert set(sample) <= set(items)

    def test_shuffle_returns_new_permutation(self):
        rng = DeterministicRng(0)
        items = list(range(10))
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # original untouched

    def test_expovariate_positive(self):
        rng = DeterministicRng(0)
        assert all(rng.expovariate(2.0) >= 0 for _ in range(50))

    def test_gauss_reasonable(self):
        rng = DeterministicRng(0)
        values = [rng.gauss(10.0, 0.001) for _ in range(50)]
        assert all(9.9 < v < 10.1 for v in values)
