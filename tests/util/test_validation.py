"""Tests for the argument-validation helpers."""

import pytest

from repro.util.validation import (
    require,
    require_identifier,
    require_non_negative,
    require_positive,
    require_type,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "should not raise")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestRequireType:
    def test_accepts_matching_type(self):
        require_type(5, int, "value")
        require_type("x", (int, str), "value")

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="value must be int"):
            require_type("5", int, "value")

    def test_error_mentions_alternatives(self):
        with pytest.raises(TypeError, match="int or str"):
            require_type(1.5, (int, str), "value")


class TestNumericChecks:
    def test_positive_accepts_positive(self):
        require_positive(0.001, "delay")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_positive_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            require_positive(value, "delay")

    def test_non_negative_accepts_zero(self):
        require_non_negative(0, "count")

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "count")


class TestRequireIdentifier:
    @pytest.mark.parametrize("name", ["x", "add", "operation_12", "_private", "CamelCase"])
    def test_accepts_legal_identifiers(self, name):
        require_identifier(name, "name")

    @pytest.mark.parametrize("name", ["", "1abc", "has space", "has-dash", "dot.ted", None, 42])
    def test_rejects_illegal_identifiers(self, name):
        with pytest.raises(ValueError):
            require_identifier(name, "name")

    @pytest.mark.parametrize("name", ["class", "return", "def", "lambda"])
    def test_rejects_keywords(self, name):
        with pytest.raises(ValueError, match="reserved keyword"):
            require_identifier(name, "name")
