"""Tests for the HTTP substrate: messages, server, client."""

import pytest

from repro.errors import HttpError
from repro.net.http import (
    DeferredHttpResponse,
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    StatusCodes,
)


class TestHttpRequestMessage:
    def test_wire_roundtrip(self):
        request = HttpRequest("POST", "/services/Calc", {"Content-Type": "text/xml"}, "<x/>")
        parsed = HttpRequest.from_bytes(request.to_bytes())
        assert parsed.method == "POST"
        assert parsed.path == "/services/Calc"
        assert parsed.header("content-type") == "text/xml"
        assert parsed.body == "<x/>"

    def test_content_length_added(self):
        request = HttpRequest("POST", "/x", body="hello")
        assert b"Content-Length: 5" in request.to_bytes()

    def test_header_lookup_case_insensitive(self):
        request = HttpRequest("GET", "/", {"SOAPAction": "urn:a#b"})
        assert request.header("soapaction") == "urn:a#b"

    def test_unsupported_method_rejected(self):
        with pytest.raises(HttpError):
            HttpRequest("FETCH", "/x")

    def test_path_must_be_absolute(self):
        with pytest.raises(HttpError):
            HttpRequest("GET", "x")

    def test_malformed_bytes_rejected(self):
        with pytest.raises(HttpError):
            HttpRequest.from_bytes(b"not an http request")

    def test_malformed_header_line_rejected(self):
        raw = b"GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n"
        with pytest.raises(HttpError):
            HttpRequest.from_bytes(raw)

    def test_precomputed_wire_body_is_byte_identical(self):
        body = "<x>héllo</x>"  # non-ASCII: byte length != char length
        plain = HttpRequest("POST", "/x", {"Content-Type": "text/xml"}, body)
        wired = HttpRequest(
            "POST",
            "/x",
            {"Content-Type": "text/xml"},
            body,
            body_wire=body.encode("utf-8"),
        )
        assert wired.to_bytes() == plain.to_bytes()
        assert wired == plain  # body_wire never participates in equality


class TestHttpResponseMessage:
    def test_wire_roundtrip(self):
        response = HttpResponse(200, {"Content-Type": "text/plain"}, "ok")
        parsed = HttpResponse.from_bytes(response.to_bytes())
        assert parsed.status == 200
        assert parsed.body == "ok"
        assert parsed.ok

    def test_error_statuses_not_ok(self):
        assert not HttpResponse(404).ok
        assert not HttpResponse(500).ok

    def test_reason_phrases(self):
        assert StatusCodes.reason(200) == "OK"
        assert StatusCodes.reason(404) == "Not Found"
        assert StatusCodes.reason(599) == "Unknown"

    def test_convenience_constructors(self):
        assert HttpResponse.ok_xml("<a/>").header("content-type").startswith("text/xml")
        assert HttpResponse.not_found("missing").status == 404
        assert HttpResponse.server_error("boom").status == 500

    def test_ok_xml_with_precomputed_wire_is_byte_identical(self):
        body = "<a>résumé</a>"
        plain = HttpResponse.ok_xml(body)
        wired = HttpResponse.ok_xml(body, wire=body.encode("utf-8"))
        assert wired.to_bytes() == plain.to_bytes()
        assert wired == plain

    def test_malformed_status_rejected(self):
        raw = b"HTTP/1.1 abc Bad\r\n\r\n"
        with pytest.raises(HttpError):
            HttpResponse.from_bytes(raw)


class TestHttpServerAndClient:
    def _serve(self, network, handler, path="/test", methods=("GET", "POST")):
        server = HttpServer(network.host("server"), 8080)
        server.add_route(path, handler, methods=methods)
        server.start()
        return server

    def test_get_roundtrip(self, network, scheduler):
        self._serve(network, lambda request: HttpResponse.ok_text("pong"))
        client = HttpClient(network.host("client"))
        response = client.get("http://server:8080/test")
        assert response.ok
        assert response.body == "pong"

    def test_post_body_reaches_handler(self, network, scheduler):
        seen = []

        def handler(request):
            seen.append(request.body)
            return HttpResponse.ok_text("ack")

        self._serve(network, handler)
        client = HttpClient(network.host("client"))
        client.post("http://server:8080/test", "payload")
        assert seen == ["payload"]

    def test_unknown_route_is_404(self, network, scheduler):
        self._serve(network, lambda request: HttpResponse.ok_text("x"))
        client = HttpClient(network.host("client"))
        assert client.get("http://server:8080/other").status == 404

    def test_query_string_ignored_for_matching(self, network, scheduler):
        self._serve(network, lambda request: HttpResponse.ok_text("wsdl here"))
        client = HttpClient(network.host("client"))
        assert client.get("http://server:8080/test?wsdl").body == "wsdl here"

    def test_prefix_route(self, network, scheduler):
        server = HttpServer(network.host("server"), 8080)
        server.add_route("/docs/", lambda request: HttpResponse.ok_text(request.path), prefix=True)
        server.start()
        client = HttpClient(network.host("client"))
        assert client.get("http://server:8080/docs/a/b").body == "/docs/a/b"

    def test_handler_exception_becomes_500(self, network, scheduler):
        def handler(request):
            raise RuntimeError("handler blew up")

        self._serve(network, handler)
        client = HttpClient(network.host("client"))
        response = client.get("http://server:8080/test")
        assert response.status == 500
        assert "handler blew up" in response.body

    def test_delayed_response_advances_clock(self, network, scheduler):
        self._serve(network, lambda request: (HttpResponse.ok_text("slow"), 0.5))
        client = HttpClient(network.host("client"))
        start = scheduler.now
        client.get("http://server:8080/test")
        assert scheduler.now - start >= 0.5

    def test_deferred_response(self, network, scheduler):
        deferred_holder = []

        def handler(request):
            deferred = DeferredHttpResponse()
            deferred_holder.append(deferred)
            return deferred

        self._serve(network, handler)
        scheduler.schedule(
            2.0, lambda: deferred_holder[0].complete(HttpResponse.ok_text("late"))
        )
        client = HttpClient(network.host("client"))
        response = client.get("http://server:8080/test")
        assert response.body == "late"
        assert scheduler.now >= 2.0

    def test_deferred_double_completion_rejected(self):
        deferred = DeferredHttpResponse()
        deferred.complete(HttpResponse.ok_text("one"))
        with pytest.raises(Exception):
            deferred.complete(HttpResponse.ok_text("two"))

    def test_stopped_server_refuses_connections(self, network, scheduler):
        server = self._serve(network, lambda request: HttpResponse.ok_text("x"))
        server.stop()
        client = HttpClient(network.host("client"))
        with pytest.raises(Exception):
            client.get("http://server:8080/test")

    def test_multiple_sequential_requests(self, network, scheduler):
        counter = {"n": 0}

        def handler(request):
            counter["n"] += 1
            return HttpResponse.ok_text(str(counter["n"]))

        self._serve(network, handler)
        client = HttpClient(network.host("client"))
        bodies = [client.get("http://server:8080/test").body for _ in range(3)]
        assert bodies == ["1", "2", "3"]
        assert client.requests_sent == 3
        assert client.responses_received == 3

    def test_duplicate_route_first_wins_and_removal_restores(self, network, scheduler):
        server = HttpServer(network.host("server"), 8080)
        first = server.add_route("/dup", lambda request: HttpResponse.ok_text("first"))
        second = server.add_route("/dup", lambda request: HttpResponse.ok_text("second"))
        server.start()
        client = HttpClient(network.host("client"))
        assert client.get("http://server:8080/dup").body == "first"
        server.remove_route(first)
        assert client.get("http://server:8080/dup").body == "second"
        server.remove_route(second)
        assert client.get("http://server:8080/dup").status == 404

    def test_requests_served_counter(self, network, scheduler):
        server = self._serve(network, lambda request: HttpResponse.ok_text("x"))
        client = HttpClient(network.host("client"))
        client.get("http://server:8080/test")
        client.get("http://server:8080/missing")
        assert server.requests_served == 2


class TestUrlParsing:
    def test_parse_url_with_port_and_path(self):
        address, path = HttpClient.parse_url("http://server:8080/a/b?c=1")
        assert address.host == "server"
        assert address.port == 8080
        assert path == "/a/b?c=1"

    def test_parse_url_default_port(self):
        address, path = HttpClient.parse_url("http://server/x")
        assert address.port == 80

    def test_parse_url_without_path(self):
        address, path = HttpClient.parse_url("http://server:99")
        assert path == "/"

    @pytest.mark.parametrize("url", ["ftp://server/x", "http://:80/x", "http://server:abc/x"])
    def test_malformed_urls_rejected(self, url):
        with pytest.raises(HttpError):
            HttpClient.parse_url(url)
