"""Tests for the shared transport layer (Deferred, Endpoint, routes, channels)."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.net.simnet import Address
from repro.net.transport import (
    ClientChannel,
    Deferred,
    Endpoint,
    RouteTable,
)


class TestDeferred:
    def test_complete_then_subscribe(self):
        deferred = Deferred("d")
        deferred.complete("value", delay=1.5)
        seen = []
        deferred.subscribe(lambda value, error, delay: seen.append((value, error, delay)))
        assert seen == [("value", None, 1.5)]

    def test_subscribe_then_complete(self):
        deferred = Deferred("d")
        seen = []
        deferred.subscribe(lambda value, error, delay: seen.append((value, error, delay)))
        assert seen == []
        deferred.complete(7)
        assert seen == [(7, None, 0.0)]

    def test_fail_delivers_error(self):
        deferred = Deferred("d")
        boom = RuntimeError("boom")
        deferred.fail(boom)
        seen = []
        deferred.subscribe(lambda value, error, delay: seen.append(error))
        assert seen == [boom]

    def test_double_completion_rejected(self):
        deferred = Deferred("d")
        deferred.complete(1)
        with pytest.raises(TransportError):
            deferred.complete(2)
        with pytest.raises(TransportError):
            deferred.fail(RuntimeError("late"))

    def test_transform_encodes_value_and_error(self):
        source = Deferred("s")
        encoded = source.transform(
            lambda value, error: b"err" if error is not None else str(value).encode()
        )
        source.complete(42, delay=0.25)
        seen = []
        encoded.subscribe(lambda value, error, delay: seen.append((value, delay)))
        assert seen == [(b"42", 0.25)]

    def test_transform_encode_failure_fails_transformed_deferred(self):
        source = Deferred("s")
        encoded = source.transform(lambda value, error: 1 / 0)
        seen = []
        encoded.subscribe(lambda value, error, delay: seen.append(error))
        source.complete("fine")
        assert source.completed  # the source resolution is not corrupted
        assert len(seen) == 1
        assert isinstance(seen[0], ZeroDivisionError)

    def test_wait_drives_scheduler(self, scheduler):
        deferred = Deferred("d")
        scheduler.schedule(3.0, lambda: deferred.complete("late"))
        assert deferred.wait(scheduler) == "late"
        assert scheduler.now >= 3.0

    def test_wait_raises_failure(self, scheduler):
        deferred = Deferred("d")
        scheduler.schedule(1.0, lambda: deferred.fail(ValueError("nope")))
        with pytest.raises(ValueError):
            deferred.wait(scheduler)


class TestRouteTable:
    def test_exact_lookup(self):
        table: RouteTable[str] = RouteTable()
        table.add_exact(("GET", "/a"), "route-a")
        assert table.lookup(("GET", "/a")) == "route-a"
        assert table.lookup(("POST", "/a")) is None
        assert table.exact_count == 1

    def test_prefix_fallback_in_registration_order(self):
        table: RouteTable[str] = RouteTable()
        table.add_prefix("GET", "/docs/", "docs")
        table.add_prefix("GET", "/docs/deep/", "deep")
        found = table.lookup(("GET", "/docs/deep/x"), prefix_scope="GET", path="/docs/deep/x")
        assert found == "docs"  # first registered wins, like the servlet scan

    def test_prefix_scoped_by_method(self):
        table: RouteTable[str] = RouteTable()
        table.add_prefix("GET", "/docs/", "docs")
        assert table.lookup(("POST", "/docs/x"), prefix_scope="POST", path="/docs/x") is None

    def test_remove_is_idempotent(self):
        table: RouteTable[str] = RouteTable()
        table.add_exact(("GET", "/a"), "r")
        table.add_prefix("GET", "/a/", "r")
        table.remove("r")
        table.remove("r")  # second removal is a no-op
        assert table.lookup(("GET", "/a")) is None
        assert table.exact_count == 0
        assert table.prefix_count == 0


def _collecting_client(network, host_name="client", port=40000):
    """Bind a raw port on ``host_name`` collecting delivered payloads."""
    received = []
    host = network.host(host_name)
    host.bind(port, lambda message, _host: received.append(message.payload))
    return host, Address(host_name, port), received


class TestEndpointDispatch:
    def test_immediate_payload_reply(self, network, scheduler):
        server = network.host("server")
        endpoint = Endpoint(server, 9100, lambda message, conn: b"pong:" + message.payload)
        endpoint.start()
        client, source, received = _collecting_client(network)
        client.send(Address("server", 9100), b"ping", source_port=source.port)
        scheduler.run_until_idle()
        assert received == [b"pong:ping"]
        assert endpoint.stats.requests_received == 1
        assert endpoint.stats.replies_sent == 1

    def test_oneway_none_outcome_sends_nothing(self, network, scheduler):
        server = network.host("server")
        endpoint = Endpoint(server, 9100, lambda message, conn: None)
        endpoint.start()
        client, source, received = _collecting_client(network)
        client.send(Address("server", 9100), b"fire-and-forget", source_port=source.port)
        scheduler.run_until_idle()
        assert received == []
        assert endpoint.stats.requests_received == 1
        assert endpoint.stats.replies_sent == 0

    def test_delayed_reply_charges_clock(self, network, scheduler):
        server = network.host("server")
        endpoint = Endpoint(server, 9100, lambda message, conn: (b"slow", 2.0))
        endpoint.start()
        client, source, received = _collecting_client(network)
        client.send(Address("server", 9100), b"x", source_port=source.port)
        scheduler.run_until_idle()
        assert received == [b"slow"]
        assert scheduler.now >= 2.0

    def test_fifo_ordering_across_out_of_order_completions(self, network, scheduler):
        """Replies leave in request-arrival order even when later requests
        complete first."""
        server = network.host("server")
        deferreds: list[Deferred] = []

        def handler(message, conn):
            deferred: Deferred = Deferred(f"reply to {message.payload!r}")
            deferreds.append(deferred)
            return deferred

        endpoint = Endpoint(server, 9100, handler, name="fifo")
        endpoint.start()
        client, source, received = _collecting_client(network)
        for index in range(3):
            client.send(Address("server", 9100), b"req%d" % index, source_port=source.port)
        scheduler.run_until(lambda: len(deferreds) == 3, description="requests arrive")
        # Resolve in reverse order; transmission must still be 0, 1, 2.
        deferreds[2].complete(b"reply2")
        deferreds[1].complete(b"reply1")
        deferreds[0].complete(b"reply0")
        scheduler.run_until_idle()
        assert received == [b"reply0", b"reply1", b"reply2"]

    def test_replies_after_stop_dropped_and_counted(self, network, scheduler):
        server = network.host("server")
        held: list[Deferred] = []

        def handler(message, conn):
            deferred: Deferred = Deferred("held")
            held.append(deferred)
            return deferred

        endpoint = Endpoint(server, 9100, handler)
        endpoint.start()
        client, source, received = _collecting_client(network)
        client.send(Address("server", 9100), b"x", source_port=source.port)
        scheduler.run_until(lambda: held, description="request arrives")
        endpoint.stop()
        held[0].complete(b"too late")
        scheduler.run_until_idle()
        assert received == []
        assert endpoint.stats.replies_dropped == 1
        assert endpoint.connections[0].replies_dropped == 1

    def test_handler_crash_releases_fifo_slot(self, network, scheduler):
        """A handler exception must not wedge the connection: later requests
        on the same connection still get their replies."""
        server = network.host("server")

        def handler(message, conn):
            if message.payload == b"boom":
                raise RuntimeError("handler crashed")
            return b"ok:" + message.payload

        endpoint = Endpoint(server, 9100, handler)
        endpoint.start()
        client, source, received = _collecting_client(network)
        client.send(Address("server", 9100), b"boom", source_port=source.port)
        with pytest.raises(RuntimeError):
            scheduler.run_until_idle()
        client.send(Address("server", 9100), b"next", source_port=source.port)
        scheduler.run_until_idle()
        assert received == [b"ok:next"]
        assert endpoint.stats.handler_errors == 1

    def test_connection_reuse_accounting(self, network, scheduler):
        server = network.host("server")
        endpoint = Endpoint(server, 9100, lambda message, conn: b"ok")
        endpoint.start()
        client, source, received = _collecting_client(network)
        for _ in range(3):
            client.send(Address("server", 9100), b"x", source_port=source.port)
            scheduler.run_until_idle()
        assert endpoint.stats.connections_opened == 1
        assert endpoint.stats.connections_reused == 2
        assert len(endpoint.connections) == 1

    def test_connection_setup_charged_once(self, network, scheduler):
        """With keep-alive accounting on, the handshake delays only the
        first reply on a connection."""
        server = network.host("server")
        endpoint = Endpoint(
            server, 9100, lambda message, conn: b"ok", charge_connection_setup=True
        )
        endpoint.start()
        client, source, received = _collecting_client(network)

        client.send(Address("server", 9100), b"x", source_port=source.port)
        scheduler.run_until_idle()
        first_rtt = scheduler.now

        before = scheduler.now
        client.send(Address("server", 9100), b"x", source_port=source.port)
        scheduler.run_until_idle()
        second_rtt = scheduler.now - before

        setup = endpoint.connections[0].setup_cost
        assert setup > 0
        assert first_rtt == pytest.approx(second_rtt + setup)


class TestClientChannel:
    def _echo_endpoint(self, network, port=9200):
        endpoint = Endpoint(
            network.host("server"), port, lambda message, conn: b"echo:" + message.payload
        )
        endpoint.start()
        return endpoint

    def test_blocking_request(self, network, scheduler):
        self._echo_endpoint(network)
        channel = ClientChannel(network.host("client"))
        reply = channel.request(
            Address("server", 9200), b"hi", lambda message: message.payload
        )
        assert reply == b"echo:hi"
        assert channel.requests_sent == 1
        assert channel.replies_received == 1

    def test_connection_reused_across_requests(self, network, scheduler):
        endpoint = self._echo_endpoint(network)
        channel = ClientChannel(network.host("client"))
        for _ in range(4):
            channel.request(Address("server", 9200), b"x", lambda m: m.payload)
        assert len(channel.connections) == 1
        assert endpoint.stats.connections_opened == 1
        assert endpoint.stats.connections_reused == 3

    def test_async_requests_pipeline_in_order(self, network, scheduler):
        self._echo_endpoint(network)
        channel = ClientChannel(network.host("client"))
        replies = []
        for index in range(3):
            deferred = channel.request_async(
                Address("server", 9200), b"%d" % index, lambda m: m.payload
            )
            deferred.subscribe(lambda value, error, delay: replies.append(value))
        scheduler.run_until_idle()
        assert replies == [b"echo:0", b"echo:1", b"echo:2"]

    def test_parse_error_fails_request(self, network, scheduler):
        self._echo_endpoint(network)
        channel = ClientChannel(network.host("client"))

        def bad_parse(message):
            raise ValueError("unparsable")

        connection = channel.connection_for(Address("server", 9200))
        port_before = connection.port
        with pytest.raises(ValueError):
            channel.request(Address("server", 9200), b"x", bad_parse)
        # The connection was reset with a fresh source port, so a late reply
        # to the aborted request cannot be mis-correlated; the next request
        # still works.
        assert connection.port != port_before
        assert channel.request(Address("server", 9200), b"y", lambda m: m.payload) == b"echo:y"

    def test_close_releases_ports(self, network, scheduler):
        self._echo_endpoint(network)
        client_host = network.host("client")
        channel = ClientChannel(client_host)
        channel.request(Address("server", 9200), b"x", lambda m: m.payload)
        bound_before = len(client_host.bound_ports)
        channel.close()
        assert len(client_host.bound_ports) == bound_before - 1

    def test_late_reply_after_reset_is_dropped_not_crashed(self, network, scheduler):
        """A reply resolving after the requester abandoned the call lands on
        the old port's tombstone instead of crashing delivery."""
        server = network.host("server")
        held: list[Deferred] = []

        def handler(message, conn):
            deferred: Deferred = Deferred("held")
            held.append(deferred)
            return deferred

        endpoint = Endpoint(server, 9300, handler)
        endpoint.start()
        channel = ClientChannel(network.host("client"))
        from repro.errors import DeadlockError

        # The blocking request drains the queue while the reply is held,
        # fails with DeadlockError, and resets the connection.
        with pytest.raises(DeadlockError):
            channel.request(Address("server", 9300), b"x", lambda m: m.payload)
        # The server completes the abandoned reply afterwards.
        held[0].complete(b"too late")
        scheduler.run_until_idle()
        assert channel.late_replies_dropped == 1

    def test_close_with_pending_reply_tombstones_port(self, network, scheduler):
        server = network.host("server")
        held: list[Deferred] = []

        def handler(message, conn):
            deferred: Deferred = Deferred("held")
            held.append(deferred)
            return deferred

        endpoint = Endpoint(server, 9300, handler)
        endpoint.start()
        channel = ClientChannel(network.host("client"))
        deferred = channel.request_async(Address("server", 9300), b"x", lambda m: m.payload)
        scheduler.run_until(lambda: held, description="request arrives")
        channel.close()
        held[0].complete(b"late")
        scheduler.run_until_idle()
        assert channel.late_replies_dropped == 1
        assert not deferred.completed

    def test_reopened_connection_uses_fresh_port(self, network, scheduler):
        self._echo_endpoint(network)
        channel = ClientChannel(network.host("client"))
        channel.request(Address("server", 9200), b"x", lambda m: m.payload)
        old_port = channel.connections[0].port
        channel.close()
        channel.request(Address("server", 9200), b"y", lambda m: m.payload)
        assert channel.connections[0].port != old_port
