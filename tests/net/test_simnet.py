"""Tests for the simulated network."""

import pytest

from repro.errors import (
    HostNotFoundError,
    NetworkError,
    PortInUseError,
    TransportError,
)
from repro.errors import ConnectionRefusedError as SimConnectionRefusedError
from repro.net import Network, loopback_profile, t1_lan_profile
from repro.net.latency import LatencyModel
from repro.net.simnet import Address
from repro.sim import Scheduler


def _collector():
    received = []

    def listener(message, host):
        received.append(message)

    return received, listener


class TestTopology:
    def test_add_and_lookup_host(self, scheduler):
        network = Network(scheduler)
        host = network.add_host("alpha")
        assert network.host("alpha") is host
        assert host in network.hosts

    def test_duplicate_host_rejected(self, scheduler):
        network = Network(scheduler)
        network.add_host("alpha")
        with pytest.raises(NetworkError):
            network.add_host("alpha")

    def test_unknown_host_lookup(self, scheduler):
        network = Network(scheduler)
        with pytest.raises(HostNotFoundError):
            network.host("ghost")


class TestPorts:
    def test_bind_and_unbind(self, network):
        server = network.host("server")
        server.bind(80, lambda message, host: None)
        assert server.is_bound(80)
        server.unbind(80)
        assert not server.is_bound(80)

    def test_double_bind_rejected(self, network):
        server = network.host("server")
        server.bind(80, lambda message, host: None)
        with pytest.raises(PortInUseError):
            server.bind(80, lambda message, host: None)

    def test_bound_ports_sorted(self, network):
        server = network.host("server")
        server.bind(9000, lambda m, h: None)
        server.bind(80, lambda m, h: None)
        assert server.bound_ports == (80, 9000)


class TestDelivery:
    def test_message_delivered_to_listener(self, network, scheduler):
        received, listener = _collector()
        network.host("server").bind(80, listener)
        network.host("client").send(Address("server", 80), b"hello")
        scheduler.run_until_idle()
        assert [m.payload for m in received] == [b"hello"]

    def test_delivery_delayed_by_latency(self, scheduler):
        network = Network(scheduler, LatencyModel(propagation=0.5, bandwidth_bytes_per_second=0, per_message_overhead=0))
        server = network.add_host("server")
        client = network.add_host("client")
        received, listener = _collector()
        server.bind(80, listener)
        client.send(Address("server", 80), b"x")
        scheduler.run_until_idle()
        assert received[0].delivered_at == pytest.approx(0.5)

    def test_larger_messages_take_longer(self, scheduler):
        network = Network(scheduler, t1_lan_profile())
        server = network.add_host("server")
        client = network.add_host("client")
        received, listener = _collector()
        server.bind(80, listener)
        client.send(Address("server", 80), b"a")
        client.send(Address("server", 80), b"b" * 100_000)
        scheduler.run_until_idle()
        small, large = received
        assert (large.delivered_at - large.sent_at) > (small.delivered_at - small.sent_at)

    def test_send_to_unbound_port_raises_on_delivery(self, network, scheduler):
        network.host("client").send(Address("server", 81), b"x")
        with pytest.raises(SimConnectionRefusedError):
            scheduler.run_until_idle()

    def test_delivery_log_is_opt_in(self, scheduler):
        recording = Network(scheduler, loopback_profile(), record_deliveries=True)
        server = recording.add_host("server")
        client = recording.add_host("client")
        server.bind(80, lambda m, h: None)
        client.send(Address("server", 80), b"one")
        client.send(Address("server", 80), b"two")
        scheduler.run_until_idle()
        assert [m.payload for m in recording.delivered_messages] == [b"one", b"two"]

        silent = Network(scheduler, loopback_profile())
        server2 = silent.add_host("server")
        client2 = silent.add_host("client")
        server2.bind(80, lambda m, h: None)
        client2.send(Address("server", 80), b"three")
        scheduler.run_until_idle()
        assert silent.delivered_messages == []
        assert silent.stats.messages_received == 1

    def test_same_instant_sends_deliver_in_send_order(self, scheduler):
        """Equal-size messages sent back-to-back coalesce into one delivery
        batch without perturbing (time, insertion) order."""
        network = Network(scheduler, loopback_profile())
        server = network.add_host("server")
        client = network.add_host("client")
        received, listener = _collector()
        server.bind(80, listener)
        for index in range(5):
            client.send(Address("server", 80), b"%d" % index)
        dispatched = scheduler.run_until_idle()
        assert [m.payload for m in received] == [b"0", b"1", b"2", b"3", b"4"]
        # One batched delivery event, not five.
        assert dispatched == 1

    def test_send_to_unknown_host_rejected_immediately(self, network):
        with pytest.raises(HostNotFoundError):
            network.host("client").send(Address("ghost", 80), b"x")

    def test_non_bytes_payload_rejected(self, network):
        with pytest.raises(TransportError):
            network.host("client").send(Address("server", 80), "not bytes")

    def test_messages_to_same_destination_preserve_order(self, network, scheduler):
        received, listener = _collector()
        network.host("server").bind(80, listener)
        client = network.host("client")
        for index in range(5):
            client.send(Address("server", 80), f"msg-{index}".encode())
        scheduler.run_until_idle()
        assert [m.payload for m in received] == [f"msg-{i}".encode() for i in range(5)]


class TestLinksAndPartitions:
    def test_per_link_latency_override(self, scheduler):
        network = Network(scheduler, LatencyModel(propagation=0.001, bandwidth_bytes_per_second=0, per_message_overhead=0))
        a = network.add_host("a")
        b = network.add_host("b")
        network.add_host("c")
        network.set_link_latency("a", "b", LatencyModel(propagation=1.0, bandwidth_bytes_per_second=0, per_message_overhead=0))
        received, listener = _collector()
        b.bind(1, listener)
        network.host("c").bind(1, lambda m, h: None)
        a.send(Address("b", 1), b"x")
        scheduler.run_until_idle()
        assert received[0].delivered_at == pytest.approx(1.0)

    def test_partition_drops_messages(self, network, scheduler):
        received, listener = _collector()
        network.host("server").bind(80, listener)
        network.partition("client", "server")
        network.host("client").send(Address("server", 80), b"lost")
        scheduler.run_until_idle()
        assert received == []
        assert network.stats.messages_dropped == 1

    def test_heal_restores_traffic(self, network, scheduler):
        received, listener = _collector()
        network.host("server").bind(80, listener)
        network.partition("client", "server")
        network.heal("client", "server")
        network.host("client").send(Address("server", 80), b"back")
        scheduler.run_until_idle()
        assert len(received) == 1

    def test_heal_all(self, network):
        network.partition("client", "server")
        network.heal_all()
        assert not network.is_partitioned("client", "server")


class TestStats:
    def test_counters_updated(self, network, scheduler):
        received, listener = _collector()
        network.host("server").bind(80, listener)
        network.host("client").send(Address("server", 80), b"12345")
        scheduler.run_until_idle()
        assert network.stats.messages_sent == 1
        assert network.stats.bytes_sent == 5
        assert network.host("client").stats.messages_sent == 1
        assert network.host("server").stats.messages_received == 1
        assert network.host("server").stats.bytes_received == 5
