"""Tests for the latency and CPU cost models."""

import pytest

from repro.net.latency import (
    CostModel,
    LatencyModel,
    era_2004_cost_model,
    loopback_profile,
    t1_lan_profile,
    wan_profile,
)


class TestLatencyModel:
    def test_delay_includes_propagation_and_overhead(self):
        model = LatencyModel(propagation=0.001, bandwidth_bytes_per_second=0, per_message_overhead=0.002)
        assert model.one_way_delay(0) == pytest.approx(0.003)

    def test_delay_grows_with_size(self):
        model = t1_lan_profile()
        assert model.one_way_delay(10_000) > model.one_way_delay(100)

    def test_zero_bandwidth_means_no_transmission_delay(self):
        model = LatencyModel(propagation=0.001, bandwidth_bytes_per_second=0, per_message_overhead=0)
        assert model.one_way_delay(1_000_000) == pytest.approx(0.001)

    def test_transmission_component(self):
        model = LatencyModel(propagation=0, bandwidth_bytes_per_second=1000, per_message_overhead=0)
        assert model.one_way_delay(500) == pytest.approx(0.5)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            t1_lan_profile().one_way_delay(-1)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(propagation=-0.1)

    def test_profiles_are_ordered_by_speed(self):
        size = 2000
        assert loopback_profile().one_way_delay(size) < t1_lan_profile().one_way_delay(size)
        assert t1_lan_profile().one_way_delay(size) < wan_profile().one_way_delay(size)


class TestCostModel:
    def test_text_processing_grows_with_size(self):
        cost = era_2004_cost_model()
        assert cost.text_processing(2000) > cost.text_processing(100)

    def test_binary_cheaper_than_text_per_byte(self):
        cost = era_2004_cost_model()
        assert cost.binary_parse_per_byte < cost.text_parse_per_byte
        assert cost.binary_processing(5000) < cost.text_processing(5000)

    def test_dynamic_dispatch_overhead_positive(self):
        cost = era_2004_cost_model()
        assert cost.dynamic_dispatch_overhead() == pytest.approx(
            cost.reflection_overhead + cost.interface_check
        )
        assert cost.dynamic_dispatch_overhead() > 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            era_2004_cost_model().text_processing(-5)

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            CostModel(fixed_dispatch=-1)

    def test_calibration_matches_table1_shape(self):
        """The defaults preserve the Table 1 ordering (§7)."""
        cost = era_2004_cost_model()
        soap_call = 2 * cost.text_processing(500)
        corba_call = 2 * cost.binary_processing(120)
        assert soap_call > corba_call
        # The SDE overhead stays well below the static processing cost, which
        # is what keeps the Table 1 overhead within ~25%.
        assert cost.dynamic_dispatch_overhead() + cost.dsi_overhead < corba_call
