"""The legacy shims warn exactly once and stay byte-identical to Scenario.

``repro.testbed`` and ``repro.workload`` are deprecation shims over the
cluster layer: each emits exactly one :class:`DeprecationWarning` at the
point of use (importing them — which ``import repro`` does — must stay
silent), and the worlds they build behave byte-identically to the
equivalent declarative :class:`repro.cluster.Scenario`.
"""

from __future__ import annotations

import warnings

from repro.cluster import Scenario, op
from repro.core.sde import SDEConfig
from repro.rmitypes import STRING
from repro.testbed import LiveDevelopmentTestbed, OperationSpec
from repro.workload import MultiClientWorkload, WorkloadSpec


def _echo_spec() -> OperationSpec:
    return OperationSpec("echo", (("message", STRING),), STRING, body=lambda self, m: m)


def _config() -> SDEConfig:
    return SDEConfig(publication_timeout=1.0, generation_cost=0.05)


class TestDeprecationWarnings:
    def test_importing_the_shims_is_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import importlib

            import repro.testbed
            import repro.workload

            importlib.reload(repro.testbed)
            importlib.reload(repro.workload)
        assert [w for w in caught if issubclass(w.category, DeprecationWarning)] == []

    def test_testbed_emits_exactly_one_deprecation_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            LiveDevelopmentTestbed(sde_config=_config())
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.cluster.Scenario" in str(deprecations[0].message)

    def test_workload_emits_exactly_one_deprecation_warning(self):
        testbed = LiveDevelopmentTestbed(sde_config=_config())
        testbed.create_soap_server("Echo", [_echo_spec()])
        testbed.publish_now("Echo")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            workload = MultiClientWorkload(
                testbed,
                "Echo",
                WorkloadSpec(clients=2, calls_per_client=2, arguments=("hi",)),
            )
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.cluster.Scenario" in str(deprecations[0].message)
        report = workload.run()
        assert report.total_successes == 4


class TestByteIdenticalToScenario:
    """The shim path and the Scenario path must produce identical numbers."""

    def _workload_report(self, technology: str):
        testbed = LiveDevelopmentTestbed(sde_config=_config())
        if technology == "soap":
            testbed.create_soap_server("Echo", [_echo_spec()])
        else:
            testbed.create_corba_server("Echo", [_echo_spec()])
        testbed.publish_now("Echo")
        spec = WorkloadSpec(
            technology=technology,
            clients=4,
            calls_per_client=5,
            operation="echo",
            arguments=("ping",),
            think_time=0.01,
        )
        return MultiClientWorkload(testbed, "Echo", spec).run()

    def _scenario_report(self, technology: str):
        echo = op("echo", (("message", STRING),), STRING, body=lambda self, m: m)
        runtime = (
            Scenario(name="shim-equivalent", sde_config=_config())
            .servers(1)
            .service("Echo", [echo], technology=technology)
            .clients(
                4,
                service="Echo",
                calls=5,
                operation="echo",
                arguments=("ping",),
                think_time=0.01,
            )
            .build()
        )
        # Match the testbed preamble exactly: the legacy flow attaches a CDE
        # client machine ("client") before publishing, and the workload fleet
        # machines are named wl-client-N.
        runtime.world.add_client("client")
        runtime.world.client_fleet(4, prefix="wl-client-")
        runtime.publish("Echo")
        return runtime.run()

    def test_soap_workload_rtts_byte_identical(self):
        shim = self._workload_report("soap")
        scenario = self._scenario_report("soap")
        assert shim.all_rtts == scenario.all_rtts
        assert shim.total_successes == scenario.total_successes
        assert shim.duration == scenario.duration

    def test_corba_workload_rtts_byte_identical(self):
        shim = self._workload_report("corba")
        scenario = self._scenario_report("corba")
        assert shim.all_rtts == scenario.all_rtts
        assert shim.total_successes == scenario.total_successes
        assert shim.duration == scenario.duration
