"""Tests for the declarative Scenario API: routing, determinism, timelines."""

from __future__ import annotations

import pytest

from repro.cluster import (
    POLICY_LEAST_LOADED,
    POLICY_STICKY,
    Scenario,
    churn,
    edit,
    op,
    publish,
)
from repro.core.sde import SDEConfig
from repro.errors import ClusterError
from repro.rmitypes import STRING


def _echo_op():
    return op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)


def _mixed_scenario(clients: int, servers: int = 4, **client_kwargs) -> Scenario:
    return (
        Scenario(name="mixed")
        .servers(servers)
        .service("EchoSoap", [_echo_op()], technology="soap", replicas=2)
        .service("EchoCorba", [_echo_op()], technology="corba", replicas=2)
        .clients(
            clients,
            protocol_mix={"soap": 0.5, "corba": 0.5},
            calls=3,
            operation="echo",
            arguments=("hi",),
            **client_kwargs,
        )
    )


class TestScenarioBasics:
    def test_single_service_world_runs_all_calls(self):
        report = (
            Scenario()
            .servers(2)
            .service("Echo", [_echo_op()], replicas=2)
            .clients(8, service="Echo", calls=5, arguments=("ping",))
            .run()
        )
        assert report.total_calls == 40
        assert report.total_successes == 40
        assert report.service("Echo").calls_routed == 40
        assert report.service("Echo").replica_count == 2
        # One keep-alive connection per client, split over the replicas.
        assert report.service("Echo").connections == 8

    def test_operation_defaults_to_first_declared(self):
        report = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(2, service="Echo", calls=2, arguments=("x",))
            .run()
        )
        assert report.total_successes == 4

    def test_protocol_mix_interleaves_deterministically(self):
        report = _mixed_scenario(8).run()
        protocols = [client.protocol for client in report.clients]
        assert protocols == ["soap", "corba"] * 4
        assert {client.service for client in report.clients} == {"EchoSoap", "EchoCorba"}

    def test_mix_and_service_are_mutually_exclusive(self):
        with pytest.raises(ClusterError):
            Scenario().clients(2, service="Echo", protocol_mix={"soap": 1.0})

    def test_unknown_policy_and_unknown_technology_fail_fast(self):
        with pytest.raises(ClusterError):
            Scenario().service("Echo", [_echo_op()], policy="random").build()
        scenario = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(2, protocol_mix={"corba": 1.0}, calls=1, arguments=("x",))
        )
        with pytest.raises(ClusterError):
            scenario.run()  # no corba service declared

    def test_replicas_spread_over_nodes(self):
        runtime = (
            Scenario().servers(3).service("Echo", [_echo_op()], replicas=3).build()
        )
        assert [r.node.name for r in runtime.replicas("Echo")] == [
            "server-1",
            "server-2",
            "server-3",
        ]

    def test_multi_service_placement_fills_every_server(self):
        """A later service fills the machines an earlier one left idle."""
        runtime = (
            Scenario()
            .servers(4)
            .service("A", [_echo_op()], replicas=2)
            .service("B", [_echo_op()], technology="corba", replicas=2)
            .build()
        )
        assert [r.node.name for r in runtime.replicas("A")] == ["server-1", "server-2"]
        assert [r.node.name for r in runtime.replicas("B")] == ["server-3", "server-4"]

    def test_rerun_with_until_measures_a_fresh_relative_window(self):
        """``until`` is run-relative: a second run on the same runtime
        drives a full window again instead of no-opping against the
        world's already-advanced clock."""
        runtime = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(2, service="Echo", calls=2, arguments=("x",))
            .build()
        )
        first = runtime.run(until=1.0)
        second = runtime.run(until=1.0)
        assert first.total_calls == 4
        assert second.total_calls == 4
        assert second.started_at > first.started_at
        assert second.duration == pytest.approx(1.0)

    def test_deadline_cut_run_does_not_contaminate_the_next(self):
        """Clients cut short by a deadline must go quiet: their leftover
        events cannot issue calls into (or mutate reports across) a later
        run on the same world."""
        runtime = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(2, service="Echo", calls=50, arguments=("x",), think_time=0.5)
            .build()
        )
        first = runtime.run(until=3.0)
        frozen_calls = first.total_calls
        assert 0 < frozen_calls < 100  # genuinely cut short
        assert first.duration == pytest.approx(3.0)  # the horizon is exact
        second = runtime.run(until=3.0)
        # The first report stayed frozen after its run returned.
        assert first.total_calls == frozen_calls
        # The second window's routing reflects only its own fleet (at most
        # one in-flight call per client may be unrecorded at the deadline).
        routed = second.service("Echo").calls_routed
        assert second.total_calls <= routed <= second.total_calls + 2

    def test_until_bounds_a_sparse_event_queue_exactly(self):
        """A think timer far beyond the horizon must not be dispatched just
        to notice the deadline passed — the window ends exactly at
        ``until`` and no extra call is issued inside it."""
        report = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(1, service="Echo", calls=10, arguments=("x",), think_time=5.0)
            .run(until=2.0)
        )
        assert report.duration == pytest.approx(2.0)
        assert report.total_calls == 1
        assert report.service("Echo").calls_routed == 1

    def test_timeline_is_armed_once_and_cut_actions_never_fire(self):
        """The timeline is world history: armed by the first run, never
        replayed.  An action beyond the first run's deadline is dropped —
        it cannot fire into (or crash) a later run on the same world."""
        runtime = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(1, service="Echo", calls=1, arguments=("x",))
            .at(10.0, edit("Echo", op("late_op")))
            .build()
        )
        runtime.run(until=5.0)
        report = runtime.run(until=15.0)
        assert report.total_successes == 1
        assert not runtime.dynamic_class("Echo").has_method("late_op")

    def test_fired_timeline_actions_are_not_replayed_by_later_runs(self):
        runtime = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(1, service="Echo", calls=2, arguments=("x",), think_time=0.3)
            .at(0.05, churn("Echo", rounds=10, period=2.0))
            .build()
        )
        runtime.run(until=1.0)  # round 0 fires inside this window
        # Re-running must not replay churn round 0 ("already has a method")
        # and the epoch guard stops the pending self-scheduled rounds.
        report = runtime.run(until=30.0)
        assert report.total_successes == 2
        assert runtime.dynamic_class("Echo").has_method("churned_op_0")
        assert not runtime.dynamic_class("Echo").has_method("churned_op_1")

    def test_exception_during_run_restores_gauges_and_quiets_fleet(self):
        """A raising timeline action must not permanently zero the lifetime
        stall-queue gauge, and the cut fleet's leftover events go quiet."""

        def boom():
            raise RuntimeError("timeline action failed")

        runtime = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(2, service="Echo", calls=10, arguments=("x",), think_time=0.05)
            .at(0.02, boom)
            .build()
        )
        replica = runtime.replicas("Echo")[0]
        replica.call_handler.stats.max_stall_queue_depth = 7  # lifetime high water
        with pytest.raises(RuntimeError):
            runtime.run()
        assert replica.call_handler.stats.max_stall_queue_depth == 7
        # Leftover fleet events are inert: draining the world routes nothing.
        routed_before = replica.calls_routed
        runtime.world.run_until_idle()
        assert replica.calls_routed == routed_before

    def test_manual_publish_is_not_repeated_by_run(self):
        runtime = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(1, service="Echo", calls=1, arguments=("x",))
            .build()
        )
        runtime.publish("Echo")
        publisher = runtime.replicas("Echo")[0].publisher
        forced_before = publisher.stats.forced_publications
        report = runtime.run()
        assert report.total_successes == 1
        assert publisher.stats.forced_publications == forced_before


class TestRoundRobinRouting:
    def test_deterministic_round_robin_assignment(self):
        """Consecutive calls rotate through the replicas in a fixed order,
        and the full routing trace is identical across two fresh runs."""
        first = _mixed_scenario(8).run()
        second = _mixed_scenario(8).run()
        trace_one = [client.replica_sequence for client in first.clients]
        trace_two = [client.replica_sequence for client in second.clients]
        assert trace_one == trace_two
        for service in ("EchoSoap", "EchoCorba"):
            routed = [r.calls_routed for r in first.service(service).replicas]
            assert sum(routed) == 4 * 3
            # Round-robin keeps the replicas balanced.
            assert max(routed) - min(routed) <= 1


class TestStickyRouting:
    def test_sticky_sessions_survive_a_mid_run_publication(self):
        def build():
            # A small generation cost so the mid-run publication completes
            # while the fleet is still calling.
            return (
                Scenario(name="sticky", sde_config=SDEConfig(generation_cost=0.02))
                .servers(2)
                .service("Echo", [_echo_op()], replicas=2, policy=POLICY_STICKY)
                .clients(
                    6, service="Echo", calls=6, arguments=("hi",), think_time=0.02
                )
                .at(0.03, edit("Echo", op("added_later")))
                .at(0.05, publish("Echo"))
            )

        report = build().run()
        assert report.total_successes == 36
        # The mid-run publication actually happened...
        assert report.service("Echo").publications >= 2
        # ...and every client stayed pinned to its replica throughout.
        pins = []
        for client in report.clients:
            assert len(set(client.replica_sequence)) == 1
            pins.append(client.replica_sequence[0])
        # First contacts spread the pins over both replicas.
        assert set(pins) == {0, 1}
        # Determinism holds for the sticky policy too.
        assert build().run().all_rtts == report.all_rtts


class TestLeastLoadedRouting:
    def test_least_loaded_balances_and_stays_deterministic(self):
        def build():
            return (
                Scenario(name="least-loaded")
                .servers(2)
                .service("Echo", [_echo_op()], replicas=2, policy=POLICY_LEAST_LOADED)
                .clients(8, service="Echo", calls=4, arguments=("hi",))
            )

        first = build().run()
        second = build().run()
        assert first.all_rtts == second.all_rtts
        routed = [r.calls_routed for r in first.service("Echo").replicas]
        assert sum(routed) == 32
        assert max(routed) - min(routed) <= 2


class TestSweepReproducibility:
    def test_4_server_64_client_sweep_rtt_sequences_reproducible(self):
        """The satellite acceptance: a 4-server × 64-client mixed sweep
        produces identical per-call RTT sequences across two fresh runs."""
        first = _mixed_scenario(64, think_time=0.01).run()
        second = _mixed_scenario(64, think_time=0.01).run()
        assert first.total_calls == 64 * 3
        assert first.all_rtts == second.all_rtts
        assert first.duration == second.duration
        assert first.events_dispatched == second.events_dispatched
        # Per-client sequences too, not just the flattened list.
        assert [c.rtts for c in first.clients] == [c.rtts for c in second.clients]


class TestTimeline:
    def test_mid_run_edit_lands_on_every_replica(self):
        report = (
            Scenario(sde_config=SDEConfig(generation_cost=0.02))
            .servers(2)
            .service("Echo", [_echo_op()], replicas=2)
            .clients(4, service="Echo", calls=8, arguments=("hi",), think_time=0.02)
            .at(0.02, edit("Echo", op("added_later")))
            .at(0.04, publish("Echo"))
            .run()
        )
        assert report.service("Echo").publications >= 2
        assert report.service("Echo").interface_version >= 3

    def test_churn_runs_repeated_edit_publish_rounds(self):
        report = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(2, service="Echo", calls=20, arguments=("hi",), think_time=0.05)
            .at(0.05, churn("Echo", rounds=3, period=0.2))
            .run()
        )
        assert report.service("Echo").publications >= 3
        assert report.total_calls == 40

    def test_timeline_without_clients_needs_until(self):
        scenario = (
            Scenario()
            .service("Echo", [_echo_op()])
            .at(0.5, edit("Echo", op("later")))
        )
        with pytest.raises(ClusterError):
            scenario.run()
        report = scenario.run(until=10.0)
        assert report.total_calls == 0
        # The edit settled into a publication before the horizon.
        assert report.service("Echo").publications >= 1

    def test_zero_arg_actions_are_accepted(self):
        fired = []
        report = (
            Scenario()
            .service("Echo", [_echo_op()])
            .clients(1, service="Echo", calls=2, arguments=("hi",), think_time=0.05)
            .at(0.01, lambda: fired.append(True))
            .run()
        )
        assert fired == [True]
        assert report.total_calls == 2


class TestInteractiveRuntime:
    def test_build_connect_and_live_edit(self):
        runtime = (
            Scenario()
            .service("Calculator", [op("double", (("x", STRING),), STRING,
                                       body=lambda _self, x: x + x)])
            .build()
        )
        runtime.publish()
        client = runtime.connect("Calculator")
        assert client.invoke("double", "ab") == "abab"
        # Live behaviour edit through the runtime's dynamic class handle.
        runtime.dynamic_class("Calculator").method("double").set_body(
            lambda _self, x: x.upper()
        )
        assert client.invoke("double", "ab") == "AB"
