"""§5.3 extensibility, lifted to the Scenario layer.

The paper claims further RMI technologies can be plugged into SDE without
touching the manager.  The seed proves that server-side (a recording toy
technology); here a *complete* third technology — its own plain-text wire
protocol over HTTP, publisher, call handler, gateway class and client-side
stack — is registered through ``Scenario.technology(...)`` and runs
end-to-end: deployment, publication, replica routing, fleet calls, fault
classification and determinism, all through the declarative API.
"""

from __future__ import annotations

from repro.cluster import Scenario, edit, op, publish
from repro.cluster.protocols import (
    OUTCOME_OTHER,
    OUTCOME_STALE,
    OUTCOME_SUCCESS,
    ProtocolClient,
)
from repro.core.sde import SDEConfig, Technology
from repro.core.sde.call_handler import CallHandler, DispatchOutcome
from repro.core.sde.publisher import DLPublisher
from repro.errors import NonExistentMethodError
from repro.net.http import HttpServer
from repro.net.http.messages import HttpResponse
from repro.net.transport import Deferred
from repro.rmitypes import STRING

TOY = "toy"
TOY_GATEWAY = "ToyServer"
TOY_BASE_PORT = 8400


class ToyPublisher(DLPublisher):
    """Publishes the interface as a plain-text operation list."""

    def render(self, description):
        operations = ",".join(description.operation_names())
        return f"TOY {description.service_name} v{description.version} ops={operations}"

    @property
    def document_path(self):
        return f"/toy/{self.dynamic_class.name}.txt"

    @property
    def content_type(self):
        return "text/plain"


class ToyCallHandler(CallHandler):
    """Serves ``operation\\narg`` POST bodies over a plain HTTP endpoint."""

    def __init__(self, manager, server, port):
        super().__init__(manager, server)
        self.port = port
        self.http_server = HttpServer(
            manager.host,
            port,
            name=f"sde-toy:{server.dynamic_class.name}",
            cores=manager.server_core,
        )
        self.http_server.add_route(self.endpoint_path, self._handle, methods=("POST",))

    @property
    def endpoint_path(self):
        return f"/toy/{self.dynamic_class.name}"

    @property
    def endpoint_url(self):
        return f"http://{self.manager.host.name}:{self.port}{self.endpoint_path}"

    def start(self):
        self.http_server.start()

    def stop(self):
        self.http_server.stop()

    def _handle(self, request):
        operation, _, argument = request.body.partition("\n")
        deferred = Deferred(f"toy reply for {operation}")

        def on_result(value, _signature):
            deferred.complete(HttpResponse.ok_text(f"OK {value}"))

        def on_fault(error):
            kind = "STALE" if isinstance(error, NonExistentMethodError) else "FAULT"
            deferred.complete(HttpResponse.ok_text(f"{kind} {type(error).__name__}"))

        self.dispatch(
            operation, (argument,), DispatchOutcome(on_result=on_result, on_fault=on_fault)
        )
        return deferred


def _toy_technology() -> Technology:
    def publisher_factory(manager, server):
        return ToyPublisher(
            dynamic_class=server.dynamic_class,
            interface_server=manager.interface_server,
            scheduler=manager.scheduler,
            namespace=f"{manager.config.namespace_prefix}:{server.name}",
            endpoint_url=server.call_handler.endpoint_url,
            timeout=manager.config.publication_timeout,
            generation_cost=manager.config.generation_cost,
            strategy=manager.config.publication_strategy,
            poll_interval=manager.config.poll_interval,
        )

    def handler_factory(manager, server):
        return ToyCallHandler(manager, server, TOY_BASE_PORT + manager.deployments)

    return Technology(
        name=TOY,
        gateway_class_name=TOY_GATEWAY,
        publisher_factory=publisher_factory,
        call_handler_factory=handler_factory,
    )


class ToyProtocolClient(ProtocolClient):
    """Client-side stack for the toy protocol: plain-text POSTs."""

    def __init__(self, host, index, replicas):
        super().__init__(host, index, replicas)
        self.documents = {}

    def prepare_replica(self, replica):
        document = self.fetch(replica.publisher.document_url)
        assert document.startswith("TOY ")
        self.documents[replica.index] = document

    def call(self, replica, operation, arguments):
        body = operation + "\n" + "".join(str(a) for a in arguments)
        wire = self.http.request_async(
            "POST", replica.call_handler.endpoint_url, body=body
        )

        def decode(response, error):
            if error is not None:
                raise error
            return response.body

        return wire.transform(decode)

    def classify(self, value, error):
        if error is not None:
            return OUTCOME_OTHER
        if value.startswith("OK "):
            return OUTCOME_SUCCESS
        if value.startswith("STALE "):
            return OUTCOME_STALE
        return OUTCOME_OTHER


def _toy_scenario(clients: int = 6, **scenario_kwargs) -> Scenario:
    return (
        Scenario(name="toy-world", **scenario_kwargs)
        .servers(2)
        .technology(_toy_technology(), client=ToyProtocolClient)
        .service(
            "Shout",
            [op("shout", (("message", STRING),), STRING,
                body=lambda _self, message: message.upper())],
            technology=TOY,
            replicas=2,
        )
        .clients(clients, service="Shout", calls=4, arguments=("hey",))
    )


class TestThirdTechnologyThroughScenario:
    def test_toy_technology_runs_end_to_end(self):
        report = _toy_scenario().run()
        assert report.total_calls == 24
        assert report.total_successes == 24
        service = report.service("Shout")
        assert service.technology == TOY
        assert service.replica_count == 2
        # Both replicas actually served traffic through the round-robin policy.
        assert all(replica.calls_routed > 0 for replica in service.replicas)
        assert service.replies_sent == 24
        # The toy publisher published a versioned plain-text document.
        assert service.interface_version >= 2

    def test_toy_technology_is_deterministic(self):
        first = _toy_scenario().run()
        second = _toy_scenario().run()
        assert first.all_rtts == second.all_rtts
        assert first.duration == second.duration

    def test_toy_stale_call_classification(self):
        """A stale call against the toy technology follows the §5.7 path:
        it stalls until publication catches up, then faults as stale."""
        report = (
            _toy_scenario(clients=4, sde_config=SDEConfig(publication_timeout=5.0))
            .at(0.0, edit("Shout", op("added_later")))
            .run()
        )
        assert report.total_successes == 16

        stale = (
            Scenario(name="toy-stale", sde_config=SDEConfig(publication_timeout=5.0))
            .technology(_toy_technology(), client=ToyProtocolClient)
            .service(
                "Shout",
                [op("shout", (("message", STRING),), STRING,
                    body=lambda _self, message: message.upper())],
                technology=TOY,
            )
            .clients(4, service="Shout", calls=6, arguments=("hey",),
                     stale_every=3, think_time=0.05)
            .at(0.0, edit("Shout", op("added_later")))
            .run()
        )
        assert stale.total_stale_faults == 4 * 2
        assert stale.service("Shout").stalled_calls > 0
