"""The streaming fixed-bin latency histogram behind cohort RTT accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.histogram import DEFAULT_BIN_WIDTH, LatencyHistogram
from repro.cluster.report import (
    EXACT_PERCENTILE_SAMPLE_LIMIT,
    ClusterReport,
    rtt_percentiles,
)
from repro.errors import ClusterError


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert len(histogram) == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(50) == 0.0
        assert histogram.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_add_and_mean(self):
        histogram = LatencyHistogram()
        histogram.add(0.010)
        histogram.add_many(0.020, 3)
        assert len(histogram) == 4
        assert histogram.mean == pytest.approx((0.010 + 3 * 0.020) / 4)
        assert histogram.min_value == 0.010
        assert histogram.max_value == 0.020

    def test_add_many_zero_count_is_noop(self):
        histogram = LatencyHistogram()
        histogram.add_many(0.5, 0)
        histogram.add_many(0.5, -3)
        assert len(histogram) == 0

    def test_negative_sample_rejected(self):
        with pytest.raises(ClusterError):
            LatencyHistogram().add(-0.001)

    def test_bad_bin_width_rejected(self):
        with pytest.raises(ClusterError):
            LatencyHistogram(bin_width=0.0)

    def test_percentile_level_validated(self):
        with pytest.raises(ClusterError):
            LatencyHistogram().percentile(101)

    def test_percentile_clamped_to_observed_range(self):
        """Bin midpoints can lie outside the observed values; answers can't."""
        histogram = LatencyHistogram(bin_width=1.0)
        histogram.add(0.1)  # bin 0, midpoint 0.5 > max observed 0.1
        assert histogram.percentile(50) == 0.1
        histogram.add(0.9)  # same bin; p0 must not dip below min
        assert histogram.percentile(0) == pytest.approx(0.5)

    def test_merge(self):
        left = LatencyHistogram()
        right = LatencyHistogram()
        left.add_many(0.010, 5)
        right.add_many(0.030, 5)
        left.merge(right)
        assert len(left) == 10
        assert left.max_value == 0.030
        assert left.mean == pytest.approx(0.020)

    def test_merge_rejects_mismatched_bins(self):
        with pytest.raises(ClusterError):
            LatencyHistogram(1e-4).merge(LatencyHistogram(1e-3))

    def test_fingerprint_tracks_state(self):
        one, two = LatencyHistogram(), LatencyHistogram()
        for histogram in (one, two):
            histogram.add_many(0.010, 4)
            histogram.add(0.025)
        assert one.fingerprint() == two.fingerprint()
        two.add(0.030)
        assert one.fingerprint() != two.fingerprint()

    def test_merge_with_empty_is_identity_both_ways(self):
        """Merging an empty histogram in (or into one) changes nothing."""
        populated = LatencyHistogram()
        populated.add_many(0.010, 4)
        populated.add(0.025)
        before = populated.fingerprint()
        populated.merge(LatencyHistogram())
        assert populated.fingerprint() == before
        assert populated.min_value == 0.010 and populated.max_value == 0.025
        empty = LatencyHistogram()
        empty.merge(populated)
        assert empty.fingerprint() == before
        both = LatencyHistogram()
        both.merge(LatencyHistogram())
        assert len(both) == 0
        assert both.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_single_bin_quantiles_stay_inside_observed_range(self):
        """With every sample in one bin, all quantile levels collapse to the
        clamped observed range — never a bare bin midpoint."""
        histogram = LatencyHistogram()
        histogram.add_many(0.0123, 1000)
        for level in (0, 1, 50, 95, 99, 100):
            assert histogram.percentile(level) == pytest.approx(0.0123)
        assert histogram.mean == pytest.approx(0.0123)
        spread = LatencyHistogram(bin_width=1.0)  # one wide bin, two values
        spread.add(0.2)
        spread.add(0.3)
        for level in (0, 50, 100):
            assert 0.2 <= spread.percentile(level) <= 0.3

    @given(
        parts=st.lists(
            st.lists(
                st.tuples(
                    # Dyadic rationals: float addition over them is exact, so
                    # the associativity claim can be byte-exact on ``total``.
                    st.integers(min_value=0, max_value=256).map(lambda n: n / 1024.0),
                    st.integers(min_value=1, max_value=5),
                ),
                max_size=20,
            ),
            min_size=3,
            max_size=3,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative_and_order_insensitive(self, parts):
        """(a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) land on identical state — the
        property cohort aggregation relies on when it folds per-flow
        histograms in partition order."""

        def histogram(samples):
            built = LatencyHistogram()
            for value, count in samples:
                built.add_many(value, count)
            return built

        left = histogram(parts[0])
        left.merge(histogram(parts[1]))
        left.merge(histogram(parts[2]))
        inner = histogram(parts[1])
        inner.merge(histogram(parts[2]))
        right = histogram(parts[0])
        right.merge(inner)
        assert left.fingerprint() == right.fingerprint()
        reversed_order = histogram(parts[2])
        reversed_order.merge(histogram(parts[1]))
        reversed_order.merge(histogram(parts[0]))
        assert left.fingerprint() == reversed_order.fingerprint()

    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=0.25, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_percentiles_within_one_bin_of_nearest_rank(self, samples):
        """Histogram percentiles land within one bin width of the owning
        nearest-rank sample (the exact path additionally interpolates
        between ranks, so it is not the reference here)."""
        histogram = LatencyHistogram()
        for sample in samples:
            histogram.add(sample)
        ordered = sorted(samples)
        approximate = histogram.percentiles()
        for level, key in ((50, "p50"), (95, "p95"), (99, "p99")):
            rank = (len(ordered) - 1) * level / 100.0
            owner = ordered[int(rank)]
            assert abs(approximate[key] - owner) <= DEFAULT_BIN_WIDTH


class TestReportPercentilePaths:
    def test_exact_path_below_threshold(self):
        """Small discrete fleets keep the exact per-sample percentiles —
        byte-identical to the pre-histogram behaviour."""
        assert EXACT_PERCENTILE_SAMPLE_LIMIT >= 4096  # seed scenarios fit
        report = ClusterReport(started_at=0.0, finished_at=1.0)
        assert report.rtt_percentiles == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
