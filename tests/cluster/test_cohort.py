"""Cohort/flow-level client aggregation: equivalence, determinism, faults.

The load-bearing property is **cohort-vs-discrete equivalence**: a client
group modeled entirely as a :class:`CohortFlow` (``representatives=0``)
must route exactly the same number of calls to exactly the same replicas
as the same group simulated discretely — the round-robin ``select_many``
is cursor-equivalent to repeated ``select`` — and must charge the server
cores approximately the same CPU (approximate only because the modeled
cost is calibrated from one probe call whose message sizes embed a
different host name).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import CohortModel, Scenario, op
from repro.cluster.cohort import build_flow_offsets
from repro.cluster.presets import (
    cohort_scale_cost_model,
    fault_drill_scenario,
    million_client_scenario,
)
from repro.core.sde import SDEConfig
from repro.errors import ClusterError
from repro.faults import crash
from repro.rmitypes import STRING


def _echo_scenario(clients, *, calls, replicas, arrival, cohort=None):
    """One round-robin echo service over 2 bounded-core servers."""
    echo = op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)
    return (
        Scenario(
            name="cohort-equivalence",
            sde_config=SDEConfig(
                generation_cost=0.0, cost_model=cohort_scale_cost_model()
            ),
        )
        .servers(2, cores=2)
        .service("Echo", [echo], technology="soap", replicas=replicas)
        .clients(
            clients,
            service="Echo",
            calls=calls,
            operation="echo",
            arguments=("hi",),
            think_time=0.001,
            arrival=arrival,
            cohort=cohort,
        )
    )


class TestCohortDiscreteEquivalence:
    @given(
        clients=st.integers(min_value=2, max_value=24),
        calls=st.integers(min_value=1, max_value=3),
        replicas=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_flow_routes_exactly_like_the_discrete_fleet(
        self, clients, calls, replicas
    ):
        """representatives=0 flow vs all-discrete: identical per-replica
        routing, full conservation, §6 recency intact."""
        arrival = 0.0002
        discrete = _echo_scenario(
            clients, calls=calls, replicas=replicas, arrival=arrival
        ).run()
        modeled = _echo_scenario(
            clients,
            calls=calls,
            replicas=replicas,
            arrival=arrival,
            cohort=CohortModel(representatives=0, tick=0.002),
        ).run()

        # Same calls to the same replicas — round-robin select_many is
        # cursor-equivalent to repeated select.
        assert [r.calls_routed for r in modeled.service("Echo").replicas] == [
            r.calls_routed for r in discrete.service("Echo").replicas
        ]
        # Conservation: every modeled call completed, none abandoned.
        assert modeled.total_modeled_calls == clients * calls
        assert modeled.total_abandoned_calls == 0
        assert modeled.total_recency_violations == 0
        assert modeled.simulated_clients == discrete.simulated_clients == clients
        # The calibrated CPU model charges what the discrete stack charged,
        # up to message-size differences from the probe host's name.
        discrete_busy = sum(node.busy_seconds for node in discrete.nodes)
        modeled_busy = sum(node.busy_seconds for node in modeled.nodes)
        assert modeled_busy == pytest.approx(discrete_busy, rel=0.02)

    def test_representatives_split_keeps_totals(self):
        """A mixed group (discrete reps + flow mass) carries every client."""
        report = _echo_scenario(
            20,
            calls=2,
            replicas=2,
            arrival=0.0002,
            cohort=CohortModel(representatives=4),
        ).run()
        assert len(report.clients) == 4
        assert report.modeled_clients == 16
        assert report.simulated_clients == 20
        assert report.total_calls == 4 * 2  # discrete calls stay discrete
        assert report.total_modeled_calls == 16 * 2
        assert report.service("Echo").calls_routed == 20 * 2


class TestCohortDeterminism:
    def test_fingerprint_stable_across_reruns(self):
        """Two fresh runs of the cohort drill are byte-identical."""
        first = million_client_scenario(2000).run()
        second = million_client_scenario(2000).run()
        assert first.cohort_fingerprint() == second.cohort_fingerprint()
        assert first.all_rtts == second.all_rtts
        assert first.events_dispatched == second.events_dispatched

    def test_partitioned_streams_only_appear_with_flows(self):
        """Discrete-only scenarios keep the scheduler's single-queue path."""
        runtime = _echo_scenario(4, calls=1, replicas=2, arrival=0.0).build()
        runtime.run()
        assert runtime.world.scheduler.partition_count == 0
        cohort_runtime = _echo_scenario(
            8,
            calls=1,
            replicas=2,
            arrival=0.0,
            cohort=CohortModel(representatives=0),
        ).build()
        cohort_runtime.run()
        assert cohort_runtime.world.scheduler.partition_count > 0


class TestCohortFaults:
    def test_total_outage_abandons_after_retry_budget(self):
        """Both replicas crashed: flows retry per tick, then abandon."""
        scenario = _echo_scenario(
            12,
            calls=2,
            replicas=2,
            arrival=lambda position: 0.005 + position * 0.0001,
            cohort=CohortModel(representatives=0, tick=0.002, max_attempts=3),
        )
        scenario.at(0.001, crash("server-1")).at(0.001, crash("server-2"))
        report = scenario.run()
        cohort = report.cohorts[0]
        assert cohort.successes == 0
        assert cohort.abandoned_calls == 12 * 2
        assert cohort.retried_calls == 12 * 2 * 2  # two retries per call
        assert cohort.failed_attempts == 12 * 2 * 3  # every attempt failed
        assert report.total_recency_violations == 0

    def test_drill_with_cohort_keeps_recency_and_conserves_calls(self):
        """Crash + partition + heal + restart at cohort scale: §6 holds."""
        report = fault_drill_scenario(
            800, cohort=CohortModel(representatives=8), calls=2, arrival=0.2 / 800
        ).run()
        assert report.modeled_clients == 800 - 8
        assert report.total_recency_violations == 0
        modeled_issued = report.modeled_clients * 2
        assert (
            report.total_modeled_calls + report.total_abandoned_calls
            == modeled_issued
        )

    def test_rolling_breaking_upgrade_rebinds_flows(self):
        """The million-client drill's breaking upgrade reaches the flows."""
        report = million_client_scenario(1500).run()
        assert report.total_rebinds > 0
        assert report.total_stale_faults_modeled > 0
        assert report.total_recency_violations == 0
        assert any(record.service == "EchoSoap" for record in report.rollouts)


class TestPresetParameterization:
    def test_drill_defaults_keep_historical_shape(self):
        scenario = fault_drill_scenario()
        assert scenario._server_count == 4
        assert [group.count for group in scenario._client_groups] == [256]
        assert scenario._client_groups[0].calls == 4
        assert [time for time, _action in scenario._timeline] == [
            0.020,
            0.030,
            0.040,
            0.050,
            0.110,
            0.150,
        ]

    def test_drill_rejects_single_server(self):
        with pytest.raises(ValueError):
            fault_drill_scenario(servers=1)

    def test_two_server_drill_separates_fault_targets(self):
        """servers=2 crashes server-1 and partitions server-2 — the two
        fault classes never collapse onto one machine."""
        report = fault_drill_scenario(
            clients=16, servers=2, calls=2, arrival=0.001
        ).run()
        downtimes = {node.name: node.downtime_s for node in report.nodes}
        assert downtimes["server-1"] > 0  # crash + restart window
        assert downtimes["server-2"] == 0  # partitioned, never crashed
        assert report.total_calls > 0

    def test_clients_rejects_non_cohort_model(self):
        with pytest.raises(ClusterError):
            Scenario().clients(10, cohort=42)


class TestCohortModelValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"representatives": -1},
            {"tick": 0.0},
            {"period": -0.1},
            {"cpu_cost": -1e-9},
            {"max_attempts": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ClusterError):
            CohortModel(**kwargs)


class TestFlowOffsets:
    def test_callable_offsets_are_sorted(self):
        offsets = build_flow_offsets([0, 1, 2, 3], lambda i: (3 - i) * 0.5)
        assert list(offsets) == [0.0, 0.5, 1.0, 1.5]

    def test_float_step_scales_positions(self):
        assert list(build_flow_offsets([4, 5, 6], 0.25)) == [1.0, 1.25, 1.5]

    def test_negative_step_rejected(self):
        with pytest.raises(ClusterError):
            build_flow_offsets([0, 1], -0.1)

    def test_negative_offset_rejected(self):
        with pytest.raises(ClusterError):
            build_flow_offsets([0, 1], lambda i: i - 1.0)
