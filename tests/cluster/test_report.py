"""Regression tests for the report helpers on empty / degenerate samples.

A scenario can legitimately complete zero calls — a deadline cuts the run
before the first reply lands, or every call is abandoned mid-fault-drill.
Every RTT helper must report cleanly (zeros) instead of raising.
"""

from __future__ import annotations

import pytest

from repro import STRING, Scenario, op
from repro.cluster.report import (
    ClientReport,
    ClusterReport,
    percentile,
    rtt_percentiles,
)
from repro.core.sde import SDEConfig


class TestPercentileHelpers:
    def test_percentile_of_empty_sample_is_zero(self):
        for level in (50.0, 95.0, 99.0):
            assert percentile([], level) == 0.0

    def test_percentile_of_singleton_and_interpolation(self):
        assert percentile([4.2], 99.0) == 4.2
        assert percentile([1.0, 2.0], 50.0) == pytest.approx(1.5)

    def test_percentile_accepts_any_sequence(self):
        assert percentile((3.0, 1.0, 2.0), 50.0) == 2.0

    def test_rtt_percentiles_of_empty_sample(self):
        assert rtt_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestEmptyReports:
    def test_empty_cluster_report_aggregates_cleanly(self):
        report = ClusterReport(started_at=0.0, finished_at=0.0)
        assert report.mean_rtt == 0.0
        assert report.max_rtt == 0.0
        assert report.throughput == 0.0
        assert report.rtt_percentiles == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert report.total_calls == 0

    def test_client_report_without_calls(self):
        client = ClientReport(name="idle")
        assert client.calls == 0
        assert client.mean_rtt == 0.0
        assert client.max_rtt == 0.0

    def test_scenario_with_zero_completed_calls_reports_cleanly(self):
        """The regression scenario: a deadline cuts the run before any reply."""
        echo = op("echo", (("m", STRING),), STRING, body=lambda _self, m: m)
        report = (
            Scenario(name="zero-calls", sde_config=SDEConfig(generation_cost=0.02))
            .servers(1)
            .service("Echo", [echo])
            .clients(2, service="Echo", calls=3, arguments=("hi",), arrival=1.0)
            .run(until=0.0001)
        )
        assert report.total_calls == 0
        assert report.all_rtts == []
        # Every aggregate and percentile helper stays well-defined.
        assert report.mean_rtt == 0.0
        assert report.max_rtt == 0.0
        assert report.rtt_percentiles == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert report.rtt_percentiles_for("Echo") == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }
        assert report.service("Echo").calls_by_version == {}
        assert report.throughput == 0.0
