"""Unit tests for the service registry and replica-selection policies."""

from __future__ import annotations

import pytest

from repro.cluster.registry import (
    LeastLoadedPolicy,
    Replica,
    RoundRobinPolicy,
    ServiceEntry,
    ServiceRegistry,
    StickyPolicy,
    make_policy,
)
from repro.errors import ClusterError, ServiceNotFoundError


def _replicas(count: int) -> list[Replica]:
    return [
        Replica(service="svc", index=index, node=None, managed=None)
        for index in range(count)
    ]


class TestPolicies:
    def test_round_robin_cycles_deterministically(self):
        policy = RoundRobinPolicy()
        replicas = _replicas(3)
        picks = [policy.select(replicas, "anyone").index for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_sticky_pins_each_client_and_spreads_first_contacts(self):
        policy = StickyPolicy()
        replicas = _replicas(2)
        first = [policy.select(replicas, name).index for name in ("a", "b", "c")]
        assert first == [0, 1, 0]  # first contacts spread round-robin
        # Every later call of a pinned client lands on the same replica.
        assert [policy.select(replicas, "a").index for _ in range(5)] == [0] * 5
        assert [policy.select(replicas, "b").index for _ in range(5)] == [1] * 5

    def test_least_loaded_prefers_idle_replicas_then_lowest_index(self):
        policy = LeastLoadedPolicy()
        replicas = _replicas(3)
        assert policy.select(replicas, "x").index == 0  # tie -> lowest index
        replicas[0].in_flight = 2
        replicas[1].in_flight = 1
        assert policy.select(replicas, "x").index == 2
        replicas[2].in_flight = 1
        assert policy.select(replicas, "x").index == 1

    def test_make_policy_resolves_names_and_passes_instances(self):
        assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(make_policy("sticky"), StickyPolicy)
        assert isinstance(make_policy("least-loaded"), LeastLoadedPolicy)
        sticky = StickyPolicy()
        assert make_policy(sticky) is sticky
        with pytest.raises(ClusterError):
            make_policy("random")


class TestServiceRegistry:
    def _registry(self) -> tuple[ServiceRegistry, ServiceEntry]:
        registry = ServiceRegistry()
        entry = ServiceEntry("mail", "soap")
        entry.replicas.extend(_replicas(2))
        registry.register(entry)
        return registry, entry

    def test_exact_lookup_and_unknown_service(self):
        registry, entry = self._registry()
        assert registry.lookup("mail") is entry
        with pytest.raises(ServiceNotFoundError):
            registry.lookup("calendar")

    def test_duplicate_registration_rejected(self):
        registry, _ = self._registry()
        with pytest.raises(ClusterError):
            registry.register(ServiceEntry("mail", "corba"))

    def test_prefix_alias_routes_to_service(self):
        registry, entry = self._registry()
        registry.add_alias("mail-", "mail")
        assert registry.lookup("mail-eu-west") is entry

    def test_select_accounts_routed_calls_and_in_flight(self):
        registry, entry = self._registry()
        replica = registry.select("mail", "client-1")
        assert replica.calls_routed == 1
        registry.begin_call(replica)
        assert replica.in_flight == 1
        registry.end_call(replica)
        assert replica.in_flight == 0

    def test_empty_service_rejected_on_select(self):
        registry = ServiceRegistry()
        registry.register(ServiceEntry("empty", "soap"))
        with pytest.raises(ClusterError):
            registry.select("empty", "client-1")
