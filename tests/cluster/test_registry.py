"""Unit tests for the service registry and replica-selection policies."""

from __future__ import annotations

import pytest

from repro.cluster.registry import (
    LeastLoadedPolicy,
    Replica,
    RoundRobinPolicy,
    ServiceEntry,
    ServiceRegistry,
    StickyPolicy,
    make_policy,
)
from repro.errors import ClusterError, NoAliveReplicaError, ServiceNotFoundError
from repro.evolve import ClientBinding
from repro.interface import InterfaceDescription, OperationSignature


class _FakeNode:
    """A stand-in server node with just the liveness flag policies read."""

    def __init__(self, name: str = "node", alive: bool = True) -> None:
        self.name = name
        self.is_alive = alive


def _replicas(count: int) -> list[Replica]:
    return [
        Replica(service="svc", index=index, node=None, managed=None)
        for index in range(count)
    ]


def _node_replicas(count: int) -> list[Replica]:
    return [
        Replica(service="svc", index=index, node=_FakeNode(f"node-{index}"), managed=None)
        for index in range(count)
    ]


class TestPolicies:
    def test_round_robin_cycles_deterministically(self):
        policy = RoundRobinPolicy()
        replicas = _replicas(3)
        picks = [policy.select(replicas, "anyone").index for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_sticky_pins_each_client_and_spreads_first_contacts(self):
        policy = StickyPolicy()
        replicas = _replicas(2)
        first = [policy.select(replicas, name).index for name in ("a", "b", "c")]
        assert first == [0, 1, 0]  # first contacts spread round-robin
        # Every later call of a pinned client lands on the same replica.
        assert [policy.select(replicas, "a").index for _ in range(5)] == [0] * 5
        assert [policy.select(replicas, "b").index for _ in range(5)] == [1] * 5

    def test_least_loaded_prefers_idle_replicas_then_lowest_index(self):
        policy = LeastLoadedPolicy()
        replicas = _replicas(3)
        assert policy.select(replicas, "x").index == 0  # tie -> lowest index
        replicas[0].in_flight = 2
        replicas[1].in_flight = 1
        assert policy.select(replicas, "x").index == 2
        replicas[2].in_flight = 1
        assert policy.select(replicas, "x").index == 1

    def test_least_loaded_tie_break_is_deterministic_under_equal_load(self):
        """With every replica carrying equal load, lowest index always wins.

        The tie-break is load-bearing for determinism: repeated selections
        under unchanged equal load must neither rotate nor depend on list
        mutation history.
        """
        policy = LeastLoadedPolicy()
        replicas = _replicas(4)
        # Equal zero load: repeated picks all land on index 0 (no rotation).
        assert [policy.select(replicas, "x").index for _ in range(5)] == [0] * 5
        # Equal non-zero load ties the same way.
        for replica in replicas:
            replica.in_flight = 3
        assert [policy.select(replicas, "x").index for _ in range(5)] == [0] * 5
        # The tie-break follows the immutable replica index, not the list
        # position — a reordered list must not change the winner.
        reordered = [replicas[2], replicas[3], replicas[0], replicas[1]]
        assert policy.select(reordered, "x").index == 0
        # Different client keys share the same deterministic answer (the
        # policy is load-driven, not session-driven).
        assert policy.select(replicas, "someone-else").index == 0

    def test_least_loaded_equal_load_tie_break_skips_dead_lowest(self):
        policy = LeastLoadedPolicy()
        replicas = _node_replicas(3)  # all equally idle
        replicas[0].node.is_alive = False
        assert policy.select(replicas, "x").index == 1

    def test_round_robin_skips_dead_replicas_and_resumes_on_restart(self):
        policy = RoundRobinPolicy()
        replicas = _node_replicas(3)
        replicas[1].node.is_alive = False
        picks = [policy.select(replicas, "x").index for _ in range(4)]
        assert picks == [0, 2, 0, 2]
        replicas[1].node.is_alive = True
        # The cursor kept advancing over the dead replica, so the revived
        # replica resumes its original slot in the rotation.
        assert [policy.select(replicas, "x").index for _ in range(3)] == [0, 1, 2]

    def test_least_loaded_excludes_dead_replicas(self):
        policy = LeastLoadedPolicy()
        replicas = _node_replicas(3)
        replicas[0].node.is_alive = False  # frozen at 0 in-flight, still excluded
        replicas[1].in_flight = 5
        assert policy.select(replicas, "x").index == 2

    def test_all_dead_raises_no_alive_replica(self):
        replicas = _node_replicas(2)
        for replica in replicas:
            replica.node.is_alive = False
        for policy in (RoundRobinPolicy(), StickyPolicy(), LeastLoadedPolicy()):
            with pytest.raises(NoAliveReplicaError):
                policy.select(replicas, "x")

    def test_sticky_repins_off_a_dead_replica_and_stays(self):
        policy = StickyPolicy()
        replicas = _node_replicas(3)
        assert policy.select(replicas, "a").index == 0
        replicas[0].node.is_alive = False
        # Deterministic re-pin: the next alive replica in cyclic index order.
        assert policy.select(replicas, "a").index == 1
        replicas[0].node.is_alive = True
        # No flap-back once re-pinned.
        assert policy.select(replicas, "a").index == 1

    def test_make_policy_resolves_names_and_passes_instances(self):
        assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(make_policy("sticky"), StickyPolicy)
        assert isinstance(make_policy("least-loaded"), LeastLoadedPolicy)
        sticky = StickyPolicy()
        assert make_policy(sticky) is sticky
        with pytest.raises(ClusterError):
            make_policy("random")


class TestServiceRegistry:
    def _registry(self) -> tuple[ServiceRegistry, ServiceEntry]:
        registry = ServiceRegistry()
        entry = ServiceEntry("mail", "soap")
        entry.replicas.extend(_replicas(2))
        registry.register(entry)
        return registry, entry

    def test_exact_lookup_and_unknown_service(self):
        registry, entry = self._registry()
        assert registry.lookup("mail") is entry
        with pytest.raises(ServiceNotFoundError):
            registry.lookup("calendar")

    def test_duplicate_registration_rejected(self):
        registry, _ = self._registry()
        with pytest.raises(ClusterError):
            registry.register(ServiceEntry("mail", "corba"))

    def test_prefix_alias_routes_to_service(self):
        registry, entry = self._registry()
        registry.add_alias("mail-", "mail")
        assert registry.lookup("mail-eu-west") is entry

    def test_select_accounts_routed_calls_and_in_flight(self):
        registry, entry = self._registry()
        replica = registry.select("mail", "client-1")
        assert replica.calls_routed == 1
        registry.begin_call(replica)
        assert replica.in_flight == 1
        registry.end_call(replica)
        assert replica.in_flight == 0

    def test_empty_service_rejected_on_select(self):
        registry = ServiceRegistry()
        registry.register(ServiceEntry("empty", "soap"))
        with pytest.raises(ClusterError):
            registry.select("empty", "client-1")


class TestReplicaRemoval:
    """Regression: removing a replica a sticky session is pinned to must
    deterministically re-pin the session instead of raising (or silently
    shifting every other session's pin)."""

    def _entry(self, count: int = 3) -> ServiceEntry:
        entry = ServiceEntry("mail", "soap", StickyPolicy())
        entry.replicas.extend(_node_replicas(count))
        return entry

    def test_remove_by_object_and_by_index(self):
        entry = self._entry()
        removed = entry.remove_replica(1)
        assert removed.index == 1
        assert [replica.index for replica in entry.replicas] == [0, 2]
        with pytest.raises(ClusterError):
            entry.remove_replica(1)  # already gone
        with pytest.raises(ClusterError):
            entry.remove_replica(removed)  # not deployed any more

    def test_sticky_session_repins_after_its_replica_is_removed(self):
        entry = self._entry()
        assert entry.select("a").index == 0
        assert entry.select("b").index == 1
        entry.remove_replica(1)
        # The orphaned session re-pins to the cyclically next replica —
        # deterministically, without raising — and stays there.
        assert entry.select("b").index == 2
        assert entry.select("b").index == 2
        # Other sessions' pins are untouched (index identity, not position).
        assert entry.select("a").index == 0

    def test_removal_then_readdition_never_reuses_an_index(self):
        entry = self._entry()
        entry.remove_replica(2)
        replica = entry.add_replica(_FakeNode("fresh"), None)
        assert replica.index == 3  # monotone: old pins cannot alias the newcomer

    def test_registry_remove_replica_delegates(self):
        registry = ServiceRegistry()
        entry = self._entry()
        registry.register(entry)
        registry.remove_replica("mail", 0)
        assert [replica.index for replica in entry.replicas] == [1, 2]


class _FakePublisher:
    """A stand-in publisher carrying just what version routing reads."""

    def __init__(self, version: int, description: InterfaceDescription | None) -> None:
        self.version = version
        self.published_description = description


class _FakeManaged:
    def __init__(self, publisher: _FakePublisher) -> None:
        self.publisher = publisher


def _described(version: int, *names: str) -> InterfaceDescription:
    return InterfaceDescription(
        service_name="svc",
        namespace="urn:test",
        operations=tuple(OperationSignature(name) for name in sorted(names)),
        version=version,
    )


def _versioned_replicas(specs) -> list[Replica]:
    """Replicas from ``(version, operation names)`` pairs, all alive."""
    return [
        Replica(
            service="svc",
            index=index,
            node=_FakeNode(f"node-{index}"),
            managed=_FakeManaged(_FakePublisher(version, _described(version, *names))),
        )
        for index, (version, names) in enumerate(specs)
    ]


class TestVersionAwareSelection:
    """The ServiceEntry selection cascade: compatible+fresh > fresh > all."""

    def _entry(self, replicas: list[Replica]) -> ServiceEntry:
        entry = ServiceEntry("svc", "soap", RoundRobinPolicy())
        entry.replicas = replicas
        entry.version_routing = True
        return entry

    def _binding(self, replicas: list[Replica]) -> ClientBinding:
        binding = ClientBinding()
        for replica in replicas:
            binding.bind(replica.index, replica.publisher.published_description)
        return binding

    def test_without_binding_or_routing_flag_behaviour_is_unchanged(self):
        replicas = _versioned_replicas([(2, ("echo",)), (2, ("echo",))])
        entry = self._entry(replicas)
        assert [entry.select("x").index for _ in range(4)] == [0, 1, 0, 1]
        entry.version_routing = False
        binding = self._binding(replicas)
        assert [entry.select("x", binding).index for _ in range(4)] == [0, 1, 0, 1]

    def test_breaking_replica_avoided_while_a_compatible_one_remains(self):
        # Replica 0 moved to v3 and renamed the operation (breaking for a
        # client bound at v2); replica 1 still publishes v2.
        replicas = _versioned_replicas([(2, ("echo",)), (2, ("echo",))])
        binding = self._binding(replicas)
        replicas[0].managed.publisher = _FakePublisher(3, _described(3, "echo_v2"))
        entry = self._entry(replicas)
        picks = [entry.select("x", binding).index for _ in range(4)]
        assert picks == [1, 1, 1, 1]

    def test_compatible_upgrade_does_not_restrict_routing(self):
        replicas = _versioned_replicas([(2, ("echo",)), (2, ("echo",))])
        binding = self._binding(replicas)
        replicas[0].managed.publisher = _FakePublisher(3, _described(3, "echo", "ping"))
        entry = self._entry(replicas)
        assert sorted({entry.select("x", binding).index for _ in range(4)}) == [0, 1]

    def test_freshness_enforces_the_client_recency_watermark(self):
        replicas = _versioned_replicas([(3, ("echo",)), (2, ("echo",))])
        binding = self._binding(replicas)
        binding.observe(3)  # the client already saw v3 somewhere
        entry = self._entry(replicas)
        # Replica 1 (still at v2) would violate §6 for this client: excluded.
        assert [entry.select("x", binding).index for _ in range(3)] == [0, 0, 0]

    def test_all_incompatible_falls_back_to_fresh_stale_fault_territory(self):
        replicas = _versioned_replicas([(3, ("echo_v2",)), (3, ("echo_v2",))])
        binding = ClientBinding()
        for replica in replicas:
            binding.bind(replica.index, _described(2, "echo"))  # stale stubs
        entry = self._entry(replicas)
        # No compatible replica remains: selection falls back to the fresh
        # tier (the client will observe a stale fault there and rebind).
        assert {entry.select("x", binding).index for _ in range(2)} == {0, 1}

    def test_no_fresh_alive_replica_raises_instead_of_violating_recency(self):
        # Replica 0 carries the only v3; it crashes while replica 1 still
        # publishes v2.  A client that already observed v3 must not be
        # served v2 — selection raises (retryable) instead.
        replicas = _versioned_replicas([(3, ("echo",)), (2, ("echo",))])
        binding = self._binding(replicas)
        binding.observe(3)
        replicas[0].node.is_alive = False
        entry = self._entry(replicas)
        with pytest.raises(NoAliveReplicaError):
            entry.select("x", binding)
        # The moment the fresh replica restarts, selection resumes there.
        replicas[0].node.is_alive = True
        assert entry.select("x", binding).index == 0

    def test_dead_replicas_still_raise_when_nothing_is_alive(self):
        replicas = _versioned_replicas([(2, ("echo",)), (2, ("echo",))])
        for replica in replicas:
            replica.node.is_alive = False
        entry = self._entry(replicas)
        with pytest.raises(NoAliveReplicaError):
            entry.select("x", self._binding(replicas))
