"""Tests for the XML utilities (QNames, elements, serialiser, parser)."""

import pytest

from repro.errors import XmlError
from repro.xmlutil import Namespaces, QName, XmlElement, parse, serialize, serialize_pretty


class TestQName:
    def test_clark_notation_roundtrip(self):
        qname = QName("http://example.org/ns", "item")
        assert qname.clark() == "{http://example.org/ns}item"
        assert QName.from_clark(qname.clark()) == qname

    def test_plain_name(self):
        qname = QName.plain("item")
        assert qname.namespace is None
        assert qname.clark() == "item"

    def test_from_clark_without_namespace(self):
        assert QName.from_clark("item") == QName(None, "item")

    @pytest.mark.parametrize("bad", ["", "has:colon", "has space"])
    def test_invalid_local_names_rejected(self, bad):
        with pytest.raises(XmlError):
            QName(None, bad)

    def test_malformed_clark_rejected(self):
        with pytest.raises(XmlError):
            QName.from_clark("{unclosed")


class TestXmlElement:
    def test_add_and_find_children(self):
        root = XmlElement("root")
        child = root.add("child", {"id": "1"}, text="hello")
        assert root.find("child") is child
        assert root.find("missing") is None
        assert child.attribute("id") == "1"

    def test_find_all(self):
        root = XmlElement("root")
        root.add("item")
        root.add("item")
        root.add("other")
        assert len(root.find_all("item")) == 2

    def test_require_raises_when_missing(self):
        root = XmlElement("root")
        with pytest.raises(XmlError):
            root.require("missing")

    def test_iter_is_depth_first(self):
        root = XmlElement("a")
        b = root.add("b")
        b.add("c")
        root.add("d")
        names = [element.name.local_name for element in root.iter()]
        assert names == ["a", "b", "c", "d"]

    def test_structural_equality_ignores_surrounding_whitespace(self):
        one = XmlElement("a", text=" hello ")
        two = XmlElement("a", text="hello")
        assert one.structurally_equal(two)

    def test_structural_inequality_on_attributes(self):
        one = XmlElement("a", {"x": "1"})
        two = XmlElement("a", {"x": "2"})
        assert not one.structurally_equal(two)

    def test_invalid_child_rejected(self):
        with pytest.raises(XmlError):
            XmlElement("a").add_child("not an element")


class TestSerialisationAndParsing:
    def test_roundtrip_simple_document(self):
        root = XmlElement("doc")
        root.add("child", {"attr": "value"}, text="text")
        parsed = parse(serialize(root))
        assert root.structurally_equal(parsed)

    def test_roundtrip_namespaced_document(self):
        root = XmlElement(QName(Namespaces.SOAP_ENVELOPE, "Envelope"))
        body = root.add_child(XmlElement(QName(Namespaces.SOAP_ENVELOPE, "Body")))
        body.add(QName("urn:app", "call"), {"kind": "test"})
        parsed = parse(serialize(root))
        assert root.structurally_equal(parsed)

    def test_escaping_of_special_characters(self):
        root = XmlElement("doc", {"attr": 'quote " and <angle>'}, text="a < b & c > d")
        parsed = parse(serialize(root))
        assert parsed.text == "a < b & c > d"
        assert parsed.attribute("attr") == 'quote " and <angle>'

    def test_well_known_prefixes_used(self):
        root = XmlElement(QName(Namespaces.WSDL, "definitions"))
        assert "xmlns:wsdl=" in serialize(root)

    def test_deterministic_output(self):
        root = XmlElement("doc")
        root.add("a", {"k": "v"})
        assert serialize(root) == serialize(root)

    def test_pretty_output_contains_newlines_and_parses(self):
        root = XmlElement("doc")
        root.add("child", text="x")
        pretty = serialize_pretty(root)
        assert "\n" in pretty
        assert root.structurally_equal(parse(pretty))

    def test_parse_bytes(self):
        assert parse(b"<root/>").name.local_name == "root"

    def test_parse_malformed_rejected(self):
        with pytest.raises(XmlError):
            parse("<unclosed>")

    def test_parse_invalid_utf8_rejected(self):
        with pytest.raises(XmlError):
            parse(b"\xff\xfe<root/>")

    def test_xml_declaration_optional(self):
        root = XmlElement("doc")
        assert serialize(root, xml_declaration=False).startswith("<doc")
        assert serialize(root).startswith("<?xml")
