"""Tests for the technology-neutral interface description model."""

import pytest

from repro.interface import (
    InterfaceDescription,
    InterfaceError,
    OperationSignature,
    Parameter,
)
from repro.rmitypes import DOUBLE, FieldDef, INT, STRING, StructType, VOID


def _add():
    return OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT)


def _greet():
    return OperationSignature("greet", (Parameter("name", STRING),), STRING)


class TestOperationSignature:
    def test_describe(self):
        assert _add().describe() == "int add(int a, int b)"

    def test_default_return_is_void(self):
        assert OperationSignature("ping").return_type == VOID

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(InterfaceError):
            OperationSignature("bad", (Parameter("x", INT), Parameter("x", INT)))

    def test_invalid_operation_name_rejected(self):
        with pytest.raises(ValueError):
            OperationSignature("not valid")

    def test_parameter_types_and_arity(self):
        op = _add()
        assert op.arity == 2
        assert op.parameter_types() == (INT, INT)

    def test_equality_is_structural(self):
        assert _add() == _add()
        assert _add() != _greet()


class TestInterfaceDescription:
    def test_operations_sorted_by_name(self):
        description = InterfaceDescription("Svc", "urn:x").with_operations([_greet(), _add()])
        assert description.operation_names() == ("add", "greet")

    def test_duplicate_operations_rejected(self):
        with pytest.raises(InterfaceError):
            InterfaceDescription("Svc", "urn:x", operations=(_add(), _add()))

    def test_minimal_description_has_no_operations(self):
        minimal = InterfaceDescription.minimal("Svc", "urn:x", "http://server:1/ep")
        assert minimal.operations == ()
        assert minimal.endpoint_url == "http://server:1/ep"
        assert minimal.version == 0

    def test_operation_lookup(self):
        description = InterfaceDescription("Svc", "urn:x").with_operations([_add()])
        assert description.has_operation("add")
        assert not description.has_operation("sub")
        assert description.operation("add").return_type == INT

    def test_with_version_and_endpoint_do_not_mutate(self):
        original = InterfaceDescription("Svc", "urn:x")
        versioned = original.with_version(3).with_endpoint("http://e")
        assert original.version == 0 and original.endpoint_url == ""
        assert versioned.version == 3 and versioned.endpoint_url == "http://e"

    def test_same_signature_ignores_version(self):
        base = InterfaceDescription("Svc", "urn:x").with_operations([_add()])
        assert base.with_version(1).same_signature(base.with_version(9))

    def test_same_signature_detects_operation_changes(self):
        one = InterfaceDescription("Svc", "urn:x").with_operations([_add()])
        two = InterfaceDescription("Svc", "urn:x").with_operations([_greet()])
        assert not one.same_signature(two)

    def test_type_registry_contains_structs(self):
        point = StructType("Point", (FieldDef("x", DOUBLE), FieldDef("y", DOUBLE)))
        description = InterfaceDescription("Svc", "urn:x").with_operations([_add()], [point])
        assert "Point" in description.type_registry()

    def test_describe_lists_operations_and_structs(self):
        point = StructType("Point", (FieldDef("x", DOUBLE),))
        description = InterfaceDescription("Svc", "urn:x").with_operations([_add()], [point])
        text = description.describe()
        assert "int add(int a, int b)" in text
        assert "struct Point" in text


class TestInterfaceDiff:
    def test_no_changes(self):
        description = InterfaceDescription("Svc", "urn:x").with_operations([_add()])
        assert description.diff(description).empty

    def test_added_removed_changed(self):
        changed_add = OperationSignature(
            "add", (Parameter("a", INT), Parameter("b", INT), Parameter("c", INT)), INT
        )
        before = InterfaceDescription("Svc", "urn:x").with_operations([_add(), _greet()])
        after = InterfaceDescription("Svc", "urn:x").with_operations(
            [changed_add, OperationSignature("ping")]
        )
        diff = before.diff(after)
        assert diff.added == ("ping",)
        assert diff.removed == ("greet",)
        assert diff.changed == ("add",)
        assert not diff.empty

    def test_diff_string_rendering(self):
        before = InterfaceDescription("Svc", "urn:x").with_operations([_add()])
        after = InterfaceDescription("Svc", "urn:x").with_operations([_greet()])
        text = str(before.diff(after))
        assert "added: greet" in text
        assert "removed: add" in text
        assert str(before.diff(before)) == "no interface changes"
