"""Tests for SOAP/XSD value encoding."""

import pytest

from repro.errors import SoapEncodingError
from repro.rmitypes import (
    ArrayType,
    BOOLEAN,
    CHAR,
    DOUBLE,
    FieldDef,
    INT,
    STRING,
    StructType,
    TypeRegistry,
)
from repro.soap.encoding import decode_dynamic, decode_value, encode_value, xsd_qname
from repro.xmlutil import Namespaces

ADDRESS = StructType("Address", (FieldDef("street", STRING), FieldDef("number", INT)))


def roundtrip(value, rmi_type, registry=None):
    element = encode_value("value", value, rmi_type, registry)
    return decode_value(element, rmi_type, registry)


class TestPrimitiveRoundtrips:
    @pytest.mark.parametrize("value,rmi_type", [
        (42, INT),
        (-17, INT),
        (3.25, DOUBLE),
        (True, BOOLEAN),
        (False, BOOLEAN),
        ("hello world", STRING),
        ("", STRING),
        ("x", CHAR),
    ])
    def test_roundtrip(self, value, rmi_type):
        assert roundtrip(value, rmi_type) == value

    def test_type_mismatch_rejected_at_encode(self):
        with pytest.raises(Exception):
            encode_value("v", "not an int", INT)

    def test_boolean_wire_format(self):
        assert encode_value("v", True, BOOLEAN).text == "true"
        assert encode_value("v", False, BOOLEAN).text == "false"

    def test_malformed_boolean_rejected_at_decode(self):
        element = encode_value("v", 5, INT)
        element.text = "maybe"
        with pytest.raises(SoapEncodingError):
            decode_value(element, BOOLEAN)

    def test_malformed_int_rejected_at_decode(self):
        element = encode_value("v", 5, INT)
        element.text = "five"
        with pytest.raises(SoapEncodingError):
            decode_value(element, INT)


class TestCompositeRoundtrips:
    def test_array_of_ints(self):
        assert roundtrip([1, 2, 3], ArrayType(INT)) == [1, 2, 3]

    def test_empty_array(self):
        assert roundtrip([], ArrayType(STRING)) == []

    def test_array_of_structs(self):
        registry = TypeRegistry((ADDRESS,))
        value = [{"street": "Main", "number": 1}, {"street": "Oak", "number": 2}]
        assert roundtrip(value, ArrayType(ADDRESS), registry) == value

    def test_struct(self):
        registry = TypeRegistry((ADDRESS,))
        value = {"street": "Brookings", "number": 1045}
        assert roundtrip(value, ADDRESS, registry) == value

    def test_struct_missing_field_in_document(self):
        element = encode_value("v", {"street": "Main", "number": 1}, ADDRESS)
        element.children = [child for child in element.children if child.name.local_name != "number"]
        with pytest.raises(SoapEncodingError):
            decode_value(element, ADDRESS)


class TestDynamicDecoding:
    def test_decode_dynamic_uses_type_attribute(self):
        element = encode_value("arg0", 7, INT)
        assert decode_dynamic(element) == 7

    def test_decode_dynamic_struct(self):
        registry = TypeRegistry((ADDRESS,))
        element = encode_value("arg0", {"street": "Main", "number": 3}, ADDRESS, registry)
        assert decode_dynamic(element, registry) == {"street": "Main", "number": 3}

    def test_decode_dynamic_without_type_attribute_rejected(self):
        element = encode_value("arg0", 7, INT)
        element.attributes.clear()
        with pytest.raises(SoapEncodingError):
            decode_dynamic(element)


class TestXsdMapping:
    def test_primitive_mapping(self):
        assert xsd_qname(INT, "urn:x").namespace == Namespaces.XSD
        assert xsd_qname(INT, "urn:x").local_name == "int"
        assert xsd_qname(STRING, "urn:x").local_name == "string"

    def test_array_maps_to_soapenc(self):
        assert xsd_qname(ArrayType(INT), "urn:x").namespace == Namespaces.SOAP_ENCODING

    def test_struct_maps_to_target_namespace(self):
        qname = xsd_qname(ADDRESS, "urn:myapp")
        assert qname.namespace == "urn:myapp"
        assert qname.local_name == "Address"
