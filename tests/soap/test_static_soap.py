"""Tests for the static SOAP server/client baseline (the "Axis" stack)."""

import pytest

from repro.errors import SoapError, SoapFaultError
from repro.interface import OperationSignature, Parameter
from repro.net import Network, t1_lan_profile
from repro.net.latency import era_2004_cost_model
from repro.rmitypes import DOUBLE, FieldDef, INT, STRING, StructType
from repro.sim import Scheduler
from repro.soap import SoapClient, SoapServiceDefinition, StaticSoapServer

POINT = StructType("Point", (FieldDef("x", DOUBLE), FieldDef("y", DOUBLE)))


def build_world(cost_model=None, latency=None):
    scheduler = Scheduler()
    network = Network(scheduler, latency or t1_lan_profile())
    server_host = network.add_host("server")
    client_host = network.add_host("client")

    definition = SoapServiceDefinition("Calculator", "urn:calc")
    definition.structs.append(POINT)
    definition.add_operation(
        OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT),
        lambda a, b: a + b,
    )
    definition.add_operation(
        OperationSignature("norm", (Parameter("p", POINT),), DOUBLE),
        lambda p: (p["x"] ** 2 + p["y"] ** 2) ** 0.5,
    )
    definition.add_operation(
        OperationSignature("fail", (Parameter("reason", STRING),), STRING),
        lambda reason: (_ for _ in ()).throw(RuntimeError(reason)),
    )
    server = StaticSoapServer(server_host, 8080, definition, cost_model=cost_model)
    server.start()
    client = SoapClient(client_host, cost_model=cost_model)
    return scheduler, server, client


class TestServiceDefinition:
    def test_duplicate_operation_rejected(self):
        definition = SoapServiceDefinition("X", "urn:x")
        signature = OperationSignature("op", (), INT)
        definition.add_operation(signature, lambda: 1)
        with pytest.raises(SoapError):
            definition.add_operation(signature, lambda: 2)

    def test_lookup_helpers(self):
        definition = SoapServiceDefinition("X", "urn:x")
        signature = OperationSignature("op", (), INT)
        definition.add_operation(signature, lambda: 1)
        assert definition.signature("op") == signature
        assert definition.implementation("op")() == 1
        assert definition.signature("missing") is None


class TestStaticRoundTrips:
    def test_wsdl_served_over_http(self):
        _scheduler, server, client = build_world()
        document = client.fetch_wsdl(server.wsdl_url)
        assert "Calculator" in document
        assert server.endpoint_url in document

    def test_connect_and_call(self):
        _scheduler, server, client = build_world()
        stub = client.connect(server.wsdl_url)
        assert stub.add(2, 3) == 5
        assert server.calls_served == 1

    def test_struct_argument(self):
        _scheduler, server, client = build_world()
        stub = client.connect(server.wsdl_url)
        assert stub.norm({"x": 3.0, "y": 4.0}) == pytest.approx(5.0)

    def test_invoke_by_name(self):
        _scheduler, server, client = build_world()
        client.connect(server.wsdl_url)
        assert client.invoke("add", 10, 20) == 30

    def test_application_exception_becomes_fault(self):
        _scheduler, server, client = build_world()
        client.connect(server.wsdl_url)
        with pytest.raises(SoapFaultError) as excinfo:
            client.invoke("fail", "kaput")
        assert "kaput" in str(excinfo.value)
        assert server.faults_returned == 1

    def test_unknown_operation_fault(self):
        _scheduler, server, client = build_world()
        client.connect(server.wsdl_url)
        from repro.soap.envelope import SoapRequest

        response = client.call_raw(SoapRequest.for_call("subtract", (1, 2), namespace="urn:calc"))
        assert response.is_fault
        assert response.fault.is_non_existent_method

    def test_call_before_connect_rejected(self):
        _scheduler, _server, client = build_world()
        with pytest.raises(SoapError):
            client.invoke("add", 1, 2)

    def test_refresh_rebuilds_stub(self):
        _scheduler, server, client = build_world()
        first = client.connect(server.wsdl_url)
        second = client.refresh(server.wsdl_url)
        assert first is not second
        assert set(second.operation_names) == set(first.operation_names)

    def test_stopped_server_unreachable(self):
        _scheduler, server, client = build_world()
        client.connect(server.wsdl_url)
        server.stop()
        with pytest.raises(Exception):
            client.invoke("add", 1, 2)


class TestCostAccounting:
    def test_cost_model_increases_rtt(self):
        scheduler_fast, server_fast, client_fast = build_world(cost_model=None)
        stub_fast = client_fast.connect(server_fast.wsdl_url)
        start = scheduler_fast.now
        stub_fast.add(1, 2)
        fast_rtt = scheduler_fast.now - start

        scheduler_slow, server_slow, client_slow = build_world(cost_model=era_2004_cost_model())
        stub_slow = client_slow.connect(server_slow.wsdl_url)
        start = scheduler_slow.now
        stub_slow.add(1, 2)
        slow_rtt = scheduler_slow.now - start

        assert slow_rtt > fast_rtt

    def test_client_speed_factor_scales_cost(self):
        cost = era_2004_cost_model()
        scheduler = Scheduler()
        network = Network(scheduler, t1_lan_profile())
        server_host = network.add_host("server")
        client_a = network.add_host("client")
        definition = SoapServiceDefinition("Echo", "urn:echo")
        definition.add_operation(
            OperationSignature("echo", (Parameter("m", STRING),), STRING), lambda m: m
        )
        server = StaticSoapServer(server_host, 8080, definition, cost_model=cost)
        server.start()

        slow_client = SoapClient(client_a, cost_model=cost, speed_factor=4.0)
        stub = slow_client.connect(server.wsdl_url)
        start = scheduler.now
        stub.echo("hi")
        slow_rtt = scheduler.now - start

        fast_client = SoapClient(client_a, cost_model=cost, speed_factor=1.0)
        stub = fast_client.connect(server.wsdl_url)
        start = scheduler.now
        stub.echo("hi")
        fast_rtt = scheduler.now - start
        assert slow_rtt > fast_rtt
