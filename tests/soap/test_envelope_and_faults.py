"""Tests for SOAP envelopes and faults."""

import pytest

from repro.errors import SoapError
from repro.rmitypes import ArrayType, FieldDef, INT, STRING, StructType, TypeRegistry
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.faults import FaultCodes, SoapFault

ADDRESS = StructType("Address", (FieldDef("street", STRING), FieldDef("number", INT)))


class TestSoapRequest:
    def test_roundtrip_simple_call(self):
        request = SoapRequest.for_call("add", (2, 3), namespace="urn:calc")
        parsed = SoapRequest.from_xml(request.to_xml())
        assert parsed.operation == "add"
        assert parsed.arguments == (2, 3)
        assert parsed.namespace == "urn:calc"

    def test_roundtrip_mixed_arguments(self):
        registry = TypeRegistry((ADDRESS,))
        request = SoapRequest.for_call(
            "register",
            ("alice", 30, True, [1, 2], {"street": "Main", "number": 1}),
            registry=registry,
        )
        parsed = SoapRequest.from_xml(request.to_xml(), registry)
        assert parsed.arguments == ("alice", 30, True, [1, 2], {"street": "Main", "number": 1})

    def test_zero_argument_call(self):
        request = SoapRequest.for_call("ping", ())
        parsed = SoapRequest.from_xml(request.to_xml())
        assert parsed.operation == "ping"
        assert parsed.arguments == ()

    def test_argument_type_count_mismatch_rejected(self):
        with pytest.raises(SoapError):
            SoapRequest("add", (1, 2), argument_types=(INT,))

    def test_malformed_xml_rejected(self):
        with pytest.raises(SoapError):
            SoapRequest.from_xml("<not-soap/>")

    def test_truncated_document_rejected(self):
        request = SoapRequest.for_call("add", (1, 2)).to_xml()
        with pytest.raises(SoapError):
            SoapRequest.from_xml(request[: len(request) // 2])

    def test_body_with_fault_rejected_as_request(self):
        response = SoapResponse.for_fault("x", SoapFault.malformed_request())
        with pytest.raises(SoapError):
            SoapRequest.from_xml(response.to_xml())


class TestSoapResponse:
    def test_roundtrip_result(self):
        response = SoapResponse.for_result("add", 5, INT, namespace="urn:calc")
        parsed = SoapResponse.from_xml(response.to_xml())
        assert not parsed.is_fault
        assert parsed.operation == "add"
        assert parsed.return_value == 5

    def test_roundtrip_array_result(self):
        response = SoapResponse.for_result("list", ["a", "b"], ArrayType(STRING))
        parsed = SoapResponse.from_xml(response.to_xml())
        assert parsed.return_value == ["a", "b"]

    def test_roundtrip_fault(self):
        fault = SoapFault.non_existent_method("add", 7)
        parsed = SoapResponse.from_xml(SoapResponse.for_fault("add", fault).to_xml())
        assert parsed.is_fault
        assert parsed.fault.is_non_existent_method
        assert "publishedVersion=7" in parsed.fault.detail

    def test_malformed_response_rejected(self):
        with pytest.raises(SoapError):
            SoapResponse.from_xml("<garbage/>")


class TestSoapFault:
    def test_factories_set_expected_codes(self):
        assert SoapFault.server_not_initialized().fault_code == FaultCodes.SERVER
        assert SoapFault.malformed_request("x").fault_code == FaultCodes.CLIENT
        assert SoapFault.non_existent_method("op").fault_code == FaultCodes.CLIENT

    def test_classification_properties(self):
        assert SoapFault.server_not_initialized().is_server_not_initialized
        assert SoapFault.malformed_request().is_malformed_request
        assert SoapFault.non_existent_method("op").is_non_existent_method
        assert not SoapFault.non_existent_method("op").is_malformed_request

    def test_application_fault_carries_exception_text(self):
        fault = SoapFault.application_fault(ValueError("division by zero"))
        assert "ValueError" in fault.detail
        assert "division by zero" in fault.detail

    def test_element_roundtrip(self):
        fault = SoapFault.non_existent_method("add", 3)
        assert SoapFault.from_element(fault.to_element()) == fault

    def test_str_includes_detail(self):
        assert "operation=add" in str(SoapFault.non_existent_method("add"))
