"""Tests for WSDL generation, parsing and stub compilation."""

import pytest

from repro.errors import SoapError, WsdlError
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.rmitypes import ArrayType, DOUBLE, FieldDef, INT, STRING, StructType, VOID
from repro.soap.envelope import SoapResponse
from repro.soap.wsdl import WsdlCompiler, generate_wsdl, parse_wsdl
from repro.soap.wsdl.compiler import CompiledStub


POINT = StructType("Point", (FieldDef("x", DOUBLE), FieldDef("y", DOUBLE)))
SEGMENT = StructType("Segment", (FieldDef("start", POINT), FieldDef("end", POINT)))


def build_description():
    operations = [
        OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT),
        OperationSignature("greet", (Parameter("name", STRING),), STRING),
        OperationSignature("norm", (Parameter("p", POINT),), DOUBLE),
        OperationSignature("tags", (), ArrayType(STRING)),
        OperationSignature("reset", ()),
    ]
    return InterfaceDescription(
        service_name="Calculator",
        namespace="urn:calc",
        endpoint_url="http://server:8080/services/Calculator",
        version=4,
    ).with_operations(operations, [POINT, SEGMENT])


class TestGeneration:
    def test_document_structure(self):
        document = generate_wsdl(build_description())
        for fragment in ("definitions", "portType", "binding", "service", "soap/http", "complexType"):
            assert fragment in document
        assert "http://server:8080/services/Calculator" in document

    def test_minimal_document_has_endpoint_but_no_operations(self):
        minimal = InterfaceDescription.minimal("Svc", "urn:x", "http://server:1/ep")
        document = generate_wsdl(minimal)
        parsed = parse_wsdl(document)
        assert parsed.operations == ()
        assert parsed.endpoint_url == "http://server:1/ep"

    def test_deterministic_output(self):
        assert generate_wsdl(build_description()) == generate_wsdl(build_description())

    def test_pretty_output_parses_identically(self):
        description = build_description()
        assert parse_wsdl(generate_wsdl(description, pretty=True)).same_signature(
            parse_wsdl(generate_wsdl(description))
        )


class TestParsing:
    def test_full_roundtrip_preserves_signature(self):
        description = build_description()
        parsed = parse_wsdl(generate_wsdl(description))
        assert parsed.same_signature(description)
        assert parsed.version == description.version

    def test_roundtrip_preserves_types(self):
        parsed = parse_wsdl(generate_wsdl(build_description()))
        assert parsed.operation("norm").parameters[0].param_type.type_name == "Point"
        assert parsed.operation("tags").return_type == ArrayType(STRING)
        assert parsed.operation("reset").return_type == VOID

    def test_nested_struct_fields_resolved(self):
        parsed = parse_wsdl(generate_wsdl(build_description()))
        segment = parsed.type_registry().get("Segment")
        assert segment.fields[0].field_type.type_name == "Point"

    def test_malformed_document_rejected(self):
        with pytest.raises(WsdlError):
            parse_wsdl("<not-wsdl/>")
        with pytest.raises(WsdlError):
            parse_wsdl("definitely not xml <<")

    def test_missing_required_attributes_rejected(self):
        with pytest.raises(WsdlError):
            parse_wsdl('<?xml version="1.0"?><wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"/>')


class TestStubCompilation:
    def _transport_recording(self, result_value=5, return_type=INT):
        calls = []

        def transport(request):
            calls.append(request)
            return SoapResponse.for_result(request.operation, result_value, return_type)

        return calls, transport

    def test_stub_exposes_operations(self):
        calls, transport = self._transport_recording()
        stub = CompiledStub(build_description(), transport)
        assert set(stub.operation_names) == {"add", "greet", "norm", "tags", "reset"}

    def test_attribute_style_invocation(self):
        calls, transport = self._transport_recording()
        stub = CompiledStub(build_description(), transport)
        assert stub.add(2, 3) == 5
        assert calls[0].operation == "add"
        assert calls[0].arguments == (2, 3)

    def test_invoke_by_name(self):
        calls, transport = self._transport_recording("hi", STRING)
        stub = CompiledStub(build_description(), transport)
        assert stub.invoke("greet", "bob") == "hi"

    def test_arity_checked_before_transport(self):
        calls, transport = self._transport_recording()
        stub = CompiledStub(build_description(), transport)
        with pytest.raises(SoapError):
            stub.add(1)
        assert calls == []

    def test_argument_types_checked(self):
        calls, transport = self._transport_recording()
        stub = CompiledStub(build_description(), transport)
        with pytest.raises(Exception):
            stub.add("one", 2)
        assert calls == []

    def test_unknown_operation_raises(self):
        _calls, transport = self._transport_recording()
        stub = CompiledStub(build_description(), transport)
        with pytest.raises(SoapError):
            stub.invoke("subtract", 1, 2)
        with pytest.raises(AttributeError):
            stub.subtract

    def test_call_count_tracked(self):
        _calls, transport = self._transport_recording()
        stub = CompiledStub(build_description(), transport)
        stub.add(1, 2)
        stub.add(3, 4)
        assert stub.method("add").call_count == 2

    def test_compiler_counts_compilations(self):
        compiler = WsdlCompiler(lambda description: self._transport_recording()[1])
        compiler.compile(build_description())
        compiler.compile(build_description())
        assert compiler.compilations == 2
