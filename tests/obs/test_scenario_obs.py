"""Scenario-level observability acceptance tests.

The ISSUE-level contract: a faulted, upgraded drill run twice produces
byte-identical span-tree and metrics fingerprints; an engineered §6
recency violation auto-dumps a flight-recorder file whose span tree names
the violating call, replica and version tier; and with observability off
every report fingerprint is untouched.
"""

from __future__ import annotations

import json

from repro.cluster import POLICY_STICKY, Scenario, edit, op
from repro.cluster.presets import fault_drill_scenario
from repro.core.sde import SDEConfig
from repro.evolve import rolling, upgrade
from repro.faults import RetryPolicy, crash, heal, partition, restart
from repro.obs import ObsConfig, Observability
from repro.obs import hooks as _obs_hooks
from repro.rmitypes import STRING
from repro.traffic import record


def _echo():
    return op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)


def _drill(name: str = "obs-drill", *, technology: str = "soap") -> Scenario:
    """2 servers × 2 replicas: crash + restart, partition + heal, rolling
    upgrade — every span source active in one run."""
    echo_loud = op("echo_loud", (("m", STRING),), STRING, body=lambda _s, m: m.upper())
    return (
        Scenario(name=name, sde_config=SDEConfig(generation_cost=0.02))
        .servers(2)
        .service("Echo", [_echo()], replicas=2, technology=technology)
        .clients(
            8,
            service="Echo",
            calls=6,
            arguments=("hi",),
            think_time=0.01,
            arrival=0.001,
            retry=RetryPolicy(max_attempts=4, timeout=0.08, backoff=0.005),
        )
        .at(0.02, crash("server-1"))
        .at(0.03, partition("server-2"))
        .at(0.04, rolling("Echo", upgrade(add=[echo_loud]), batch_size=1, drain=0.01))
        .at(0.07, heal("server-2"))
        .at(0.08, restart("server-1"))
    )


class TestDrillDeterminism:
    def test_double_run_fingerprints_are_byte_identical(self):
        first, second = Observability(), Observability()
        report_one = _drill().run(obs=first)
        report_two = _drill().run(obs=second)
        assert first.span_fingerprint() == second.span_fingerprint()
        assert report_one.metrics_fingerprint() is not None
        assert report_one.metrics_fingerprint() == report_two.metrics_fingerprint()
        assert report_one.fingerprint() == report_two.fingerprint()
        assert first.tracer.finished_count == second.tracer.finished_count > 0

    def test_drill_span_tree_covers_every_source(self):
        obs = Observability()
        _drill().run(obs=obs)
        kinds = {span.kind for span in obs.spans}
        assert {"call", "attempt", "server", "instant"} <= kinds
        names = {span.name for span in obs.spans}
        assert {"fault.crash", "fault.partition", "fault.heal", "fault.restart"} <= names
        assert "rollout.wave" in names and "rollout.finished" in names
        # Server spans join the client's causal tree via the wire context.
        servers = [span for span in obs.spans if span.kind == "server"]
        assert servers and all(span.parent_id is not None for span in servers)

    def test_corba_servers_join_the_tree_too(self):
        obs = Observability()
        _drill(technology="corba").run(obs=obs)
        servers = [span for span in obs.spans if span.kind == "server"]
        assert servers and all(span.parent_id is not None for span in servers)

    def test_metrics_cover_nodes_and_services(self):
        obs = Observability()
        report = _drill().run(obs=obs)
        assert report.metrics is not None
        series = report.metrics.series
        assert "service.Echo.in_flight" in series
        assert "service.Echo.watermark_age" in series
        assert any(name.startswith("node.") for name in series)
        assert len(report.metrics.times) > 0


class TestObsOffIsInvisible:
    def test_report_fingerprint_is_untouched(self):
        baseline = _drill().run()
        observed_off = _drill().run(obs=False)
        assert observed_off.fingerprint() == baseline.fingerprint()
        assert observed_off.metrics is None

    def test_hooks_disarmed_after_an_observed_run(self):
        _drill().run(obs=True)
        assert _obs_hooks.ACTIVE is None
        assert _obs_hooks.CONTEXT is None
        assert _obs_hooks.SERVER_WIRE_CONTEXT is None


def _violation_scenario() -> Scenario:
    """The engineered §6 violation from the failover suite: one replica
    force-published ahead, the sticky client's replica crashes, and the
    failover target still serves the older version."""

    def publish_only_first_replica(runtime):
        replica = runtime.replicas("Echo")[0]
        replica.node.manager_interface.force_publication(replica.class_name)

    return (
        Scenario(name="obs-violation", sde_config=SDEConfig(generation_cost=0.01))
        .servers(2)
        .service("Echo", [_echo()], replicas=2, policy=POLICY_STICKY)
        .clients(
            2,
            service="Echo",
            calls=8,
            arguments=("hi",),
            think_time=0.02,
            retry=RetryPolicy(max_attempts=4, timeout=0.5, backoff=0.005),
        )
        .at(0.030, edit("Echo", op("only_on_replica_0")))
        .at(0.040, publish_only_first_replica)
        .at(0.090, crash("server-1"))
    )


class TestRecencyViolationFlightDump:
    def _violation_scenario(self) -> Scenario:
        return _violation_scenario()

    def test_violation_auto_dumps_named_flight_file(self, tmp_path):
        obs = Observability(ObsConfig(dump_dir=tmp_path))
        report = self._violation_scenario().run(obs=obs)
        assert report.total_recency_violations > 0
        dump = next(
            dump for dump in obs.flight_dumps if dump["reason"] == "recency-violation"
        )
        # The dump names the violating call's coordinates...
        detail = dump["detail"]
        assert detail["operation"] == "echo"
        assert detail["service"] == "Echo"
        assert "replica" in detail and "tier" in detail
        assert detail["version"] < detail["watermark"]
        # ...and its span tree contains the annotated violating call.
        violating = [
            span
            for span in dump["spans"] + dump["open_spans"]
            if span["attrs"].get("recency_violation")
        ]
        assert violating and violating[0]["span_id"] == detail["span_id"]
        # The file landed under the configured dump dir, named by counter.
        path = tmp_path / "flight-001-recency-violation.json"
        assert path.exists()
        assert json.loads(path.read_text())["reason"] == "recency-violation"

    def test_violation_dump_is_deterministic(self, tmp_path):
        first = Observability(ObsConfig(dump_dir=tmp_path / "a"))
        second = Observability(ObsConfig(dump_dir=tmp_path / "b"))
        report_one = self._violation_scenario().run(obs=first)
        report_two = self._violation_scenario().run(obs=second)
        strip = lambda dump: {k: v for k, v in dump.items() if k != "path"}
        assert [strip(d) for d in first.flight_dumps] == [
            strip(d) for d in second.flight_dumps
        ]
        assert report_one.metrics_fingerprint() is not None
        assert report_one.metrics_fingerprint() == report_two.metrics_fingerprint()


class TestDumpDirEnv:
    def test_env_var_redirects_flight_dumps(self, tmp_path, monkeypatch):
        target = tmp_path / "env-dumps"
        monkeypatch.setenv("REPRO_OBS_DUMP_DIR", str(target))
        obs = Observability()
        report = _violation_scenario().run(obs=obs)
        assert report.total_recency_violations > 0
        assert (target / "flight-001-recency-violation.json").exists()

    def test_explicit_dump_dir_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DUMP_DIR", str(tmp_path / "env-dumps"))
        explicit = tmp_path / "explicit-dumps"
        obs = Observability(ObsConfig(dump_dir=explicit))
        _violation_scenario().run(obs=obs)
        assert (explicit / "flight-001-recency-violation.json").exists()
        assert not (tmp_path / "env-dumps").exists()

    def test_unset_env_keeps_dumps_in_memory_only(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_DUMP_DIR", raising=False)
        monkeypatch.chdir(tmp_path)
        obs = Observability()
        _violation_scenario().run(obs=obs)
        assert obs.flight_dumps and "path" not in obs.flight_dumps[0]
        assert list(tmp_path.iterdir()) == []


class TestPublicApiWiring:
    def test_obs_true_uses_defaults(self):
        report = _drill().run(obs=True)
        assert report.metrics is not None

    def test_scheduler_trace_rides_the_ring_cap(self):
        obs = Observability(ObsConfig(scheduler_trace=True, ring_capacity=64))
        _drill().run(obs=obs)
        trace = obs.dispatch_trace
        assert 0 < len(trace) <= 64
        time, label = trace[0]
        assert isinstance(time, float) and isinstance(label, str)

    def test_span_ring_capacity_bounds_memory(self):
        obs = Observability(ObsConfig(ring_capacity=16, metrics=False))
        _drill().run(obs=obs)
        assert len(obs.spans) == 16
        assert obs.tracer.finished_count > 16

    def test_recorded_trace_carries_spans_channel(self, tmp_path):
        scenario = fault_drill_scenario(clients=8, servers=2, calls=2)
        report, reader = record(scenario, tmp_path / "drill.jsonl", obs=True)
        assert report.metrics is not None
        spans = reader.spans
        assert spans and any(span["kind"] == "server" for span in spans)
        # Replay ignores the channel: records stay well-formed JSONL.
        kinds = {record_["kind"] for record_ in reader.records}
        assert "span" in kinds
