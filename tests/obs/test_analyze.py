"""Trace-analytics acceptance tests: exact attribution, loaders, run-diff.

The ISSUE-level contract: on the 4-server × 256-client crash + partition
+ rolling-upgrade drill with observability armed, every call's attribution
components sum **exactly** (zero simulated-time residual) to its measured
RTT, and the resulting :class:`~repro.obs.analyze.LatencyProfile` and SLO
results are byte-deterministic run-to-run.  A Hypothesis property pushes
the same invariant across random fault/retry schedules, and the loader
tests prove every span source the repo produces — a live
:class:`Observability`, span JSONL exports, ``repro-trace/1`` recordings
and flight-recorder dumps — attributes to the identical profile.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.presets import fault_drill_scenario
from repro.cluster.scenario import Scenario, edit, op
from repro.core.sde import SDEConfig
from repro.evolve import rolling, upgrade
from repro.faults import RetryPolicy, crash, heal, partition, restart
from repro.net.latency import CostModel
from repro.obs import ObsConfig, Observability
from repro.obs.analyze import (
    ALL_COMPONENTS,
    RTT_COMPONENTS,
    attribute_calls,
    bench_profile_diff,
    build_profile,
    diff_profiles,
    dominant_component,
    load_spans,
)
from repro.obs.analyze import main as analyze_main
from repro.obs.slo import availability_slo, latency_slo, recency_slo
from repro.rmitypes import STRING
from repro.traffic import record
from repro.traffic.trace import echo_body

ECHO = op("echo", (("message", STRING),), STRING, body=echo_body)
ECHO_V2 = op("echo_v2", (("message", STRING),), STRING, body=echo_body)
BREAKING = upgrade(add=[ECHO_V2], remove=["echo"], successors={"echo": "echo_v2"})


def _drill(name: str = "analyze-drill") -> Scenario:
    """The small fault drill from the obs suite: crash + partition + rolling
    upgrade, every retry path exercised.  Every operation body is a
    registered trace body, so the drill is recordable (the loader-parity
    test replays it through the ``repro-trace/1`` channel)."""
    echo_loud = op("echo_loud", (("message", STRING),), STRING, body=echo_body)
    return (
        Scenario(name=name, sde_config=SDEConfig(generation_cost=0.02))
        .servers(2)
        .service("Echo", [ECHO], replicas=2)
        .clients(
            8,
            service="Echo",
            calls=6,
            arguments=("hi",),
            think_time=0.01,
            arrival=0.001,
            retry=RetryPolicy(max_attempts=4, timeout=0.08, backoff=0.005),
        )
        .at(0.02, crash("server-1"))
        .at(0.03, partition("server-2"))
        .at(0.04, rolling("Echo", upgrade(add=[echo_loud]), batch_size=1, drain=0.01))
        .at(0.07, heal("server-2"))
        .at(0.08, restart("server-1"))
    )


def _stall_drill() -> Scenario:
    """Deliberate §5.7 stall pressure: stale probes against a just-edited
    interface force stall-queue waits equal to the generation cost."""
    return (
        Scenario(name="analyze-stall", sde_config=SDEConfig(generation_cost=0.05))
        .servers(2)
        .service("Echo", [ECHO], replicas=2)
        .clients(
            6,
            service="Echo",
            calls=6,
            arguments=("hi",),
            think_time=0.01,
            arrival=0.002,
            stale_every=3,
            retry=RetryPolicy(max_attempts=4, timeout=0.2, backoff=0.005),
        )
        .at(0.015, edit("Echo", op("added_mid_run")))
    )


def _rebind_drill() -> Scenario:
    """A rolling *breaking* upgrade: stale fault + rebind on every crossing
    client (the §5.7 contract), so rebind spans appear."""
    return (
        Scenario(name="analyze-rebind", sde_config=SDEConfig(generation_cost=0.02))
        .servers(2)
        .service("Echo", [ECHO], replicas=2)
        .clients(
            8,
            service="Echo",
            calls=8,
            arguments=("hi",),
            think_time=0.02,
            arrival=0.001,
        )
        .at(0.03, rolling("Echo", BREAKING, batch_size=1, drain=0.03))
    )


def _acceptance_scenario() -> Scenario:
    """The ISSUE acceptance workload: the historical 4×256 fault drill plus
    a rolling breaking upgrade, with declared SLOs."""
    return (
        fault_drill_scenario()
        .at(0.080, rolling("EchoSoap", BREAKING, batch_size=1, drain=0.005))
        .slo(
            latency_slo("fleet-latency", threshold_s=0.08, objective=0.5),
            availability_slo("fleet-availability", objective=0.999),
            recency_slo("fleet-recency"),
        )
    )


class TestExactAttribution:
    def test_every_drill_call_attributed_with_zero_residual(self):
        obs = Observability()
        report = _drill().run(obs=obs)
        profile = obs.profile()
        assert profile.call_count == report.total_calls == 48
        assert profile.dropped == 0
        assert profile.max_residual_ns == 0
        for attribution in profile.attributions:
            assert attribution.residual_ns == 0
            assert (
                sum(attribution.components[name] for name in RTT_COMPONENTS)
                == attribution.rtt_ns
            )
            assert all(attribution.components[n] >= 0 for n in RTT_COMPONENTS)
            assert attribution.client and attribution.service == "Echo"
            assert attribution.outcome

    def test_network_dominates_an_unfaulted_run(self):
        scenario = (
            Scenario(name="analyze-clean", sde_config=SDEConfig(generation_cost=0.02))
            .servers(2)
            .service("Echo", [ECHO], replicas=2)
            .clients(4, service="Echo", calls=4, arguments=("hi",), think_time=0.01)
        )
        obs = Observability()
        scenario.run(obs=obs)
        profile = obs.profile()
        assert profile.max_residual_ns == 0
        assert profile.overall["network"]["total_s"] > 0
        assert profile.overall["backoff"]["total_s"] == 0
        assert profile.overall["stall"]["total_s"] == 0

    def test_stall_time_attributed_to_the_stall_component(self):
        obs = Observability()
        report = _stall_drill().run(obs=obs)
        assert report.total_stale_faults > 0
        profile = obs.profile()
        assert profile.max_residual_ns == 0
        # The stalled probes waited out the 50ms generation; that wait must
        # land in `stall`, not be smeared into network time.
        assert profile.overall["stall"]["total_s"] > 0
        assert profile.overall["stall"]["max_s"] == pytest.approx(0.05, abs=0.01)

    def test_core_wait_and_cpu_attributed_with_bounded_cores(self):
        scenario = fault_drill_scenario(
            clients=16, servers=2, cores=1, cost_model=CostModel()
        )
        obs = Observability()
        scenario.run(obs=obs)
        profile = obs.profile()
        assert profile.max_residual_ns == 0
        # A modeled cost with one core per node: CPU service time appears,
        # and contention queues behind the busy core.
        assert profile.overall["cpu"]["total_s"] > 0
        assert profile.overall["core_wait"]["total_s"] > 0

    def test_backoff_counts_retry_gaps(self):
        obs = Observability()
        report = _drill().run(obs=obs)
        assert report.total_retried_calls > 0
        profile = obs.profile()
        retried = [a for a in profile.attributions if a.attempts > 1]
        assert retried
        assert sum(a.components["backoff"] for a in retried) > 0

    def test_rebind_time_tracked_per_call_but_outside_the_rtt_sum(self):
        obs = Observability()
        report = _rebind_drill().run(obs=obs)
        assert report.total_rebinds > 0
        profile = obs.profile()
        assert profile.max_residual_ns == 0
        rebound = [a for a in profile.attributions if a.rebind_ns > 0]
        assert rebound
        # The refetch happened after the call span closed: rebind time must
        # not inflate the RTT components.
        for attribution in rebound:
            assert (
                sum(attribution.components[name] for name in RTT_COMPONENTS)
                == attribution.rtt_ns
            )
        assert profile.overall["rebind"]["total_s"] > 0

    def test_degrades_gracefully_without_server_spans(self):
        obs = Observability()
        _drill().run(obs=obs)
        stripped = [s for s in load_spans(obs) if s["kind"] != "server"]
        attributions, dropped = attribute_calls(stripped)
        assert attributions and dropped == 0
        for attribution in attributions:
            assert attribution.residual_ns == 0
            # With no server span the whole attempt folds into transit time.
            assert attribution.components["stall"] == 0
            assert attribution.components["core_wait"] == 0
            assert attribution.components["cpu"] == 0

    def test_tail_view_ranks_component_growth(self):
        obs = Observability()
        _drill().run(obs=obs)
        tail = obs.profile().tail
        assert tail["tail_calls"] >= 1 and tail["median_calls"] >= 1
        assert [row["component"] for row in tail["ranked"]] != []
        growths = [row["growth_s"] for row in tail["ranked"]]
        assert growths == sorted(growths, reverse=True)
        # The faulted drill's slowest decile lost its time to retries.
        assert tail["ranked"][0]["growth_s"] > 0


class TestLoaderParity:
    def test_every_span_source_attributes_identically(self, tmp_path):
        obs = Observability(ObsConfig(dump_dir=tmp_path))
        _drill().run(obs=obs)
        jsonl = obs.export_jsonl(tmp_path / "spans.jsonl")
        dump = obs.recorder.trip("loader-parity")
        dump_path = Path(dump["path"])
        _report, reader = record(_drill(), tmp_path / "trace.jsonl", obs=True)

        reference = build_profile(obs)
        assert reference.call_count == 48
        sources = [jsonl, dump_path, tmp_path / "trace.jsonl", reader.spans]
        for source in sources:
            profile = build_profile(source)
            assert profile.fingerprint() == reference.fingerprint()

    def test_non_span_file_is_rejected(self, tmp_path):
        path = tmp_path / "not-spans.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError):
            load_spans(path)


class TestAcceptanceDrill:
    """ISSUE acceptance: the 4×256 crash + partition + rolling-upgrade
    drill, exact per-call attribution, byte-deterministic outputs."""

    def _run(self):
        obs = Observability(ObsConfig(ring_capacity=32768))
        report = _acceptance_scenario().run(obs=obs)
        return obs, report

    def test_exact_attribution_and_byte_determinism(self):
        obs_one, report_one = self._run()
        obs_two, report_two = self._run()

        profile = obs_one.profile()
        assert report_one.total_calls == 1024
        assert profile.call_count == 1024
        assert profile.dropped == 0
        # Every call's components sum exactly to its measured RTT.
        assert profile.max_residual_ns == 0
        assert all(a.residual_ns == 0 for a in profile.attributions)
        # Both wire protocols and both services are represented.
        assert set(profile.by_protocol) == {"corba", "soap"}
        assert set(profile.by_service) == {"EchoCorba", "EchoSoap"}
        # The breaking rolling upgrade drove §5.7 stale faults + rebinds.
        assert report_one.total_rebinds > 0
        assert sum(a.rebind_ns for a in profile.attributions) > 0

        # Byte-determinism: profile, SLO results and metrics fingerprints.
        assert profile.fingerprint() == obs_two.profile().fingerprint()
        assert [r.to_dict() for r in report_one.slo_results] == [
            r.to_dict() for r in report_two.slo_results
        ]
        assert report_one.metrics_fingerprint() == report_two.metrics_fingerprint()

        assert {r.name for r in report_one.slo_results} == {
            "fleet-availability",
            "fleet-latency",
            "fleet-recency",
        }
        assert report_one.slo("fleet-recency").ok
        assert report_one.slo("fleet-availability").ok


class TestAttributionProperty:
    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        clients=st.integers(min_value=1, max_value=3),
        calls=st.integers(min_value=1, max_value=3),
        crash_at=st.sampled_from([0.01, 0.02, 0.04]),
        partition_too=st.booleans(),
        timeout=st.sampled_from([0.03, 0.08]),
        backoff=st.sampled_from([0.0, 0.005]),
        generation_cost=st.sampled_from([0.0, 0.02]),
        stale_every=st.sampled_from([None, 2]),
        cores=st.sampled_from([None, 1]),
    )
    def test_components_always_sum_exactly(
        self,
        clients,
        calls,
        crash_at,
        partition_too,
        timeout,
        backoff,
        generation_cost,
        stale_every,
        cores,
    ):
        scenario = (
            Scenario(
                name="analyze-prop",
                sde_config=SDEConfig(generation_cost=generation_cost),
            )
            .servers(2, cores=cores)
            .service("Echo", [ECHO], replicas=2)
            .clients(
                clients,
                service="Echo",
                calls=calls,
                arguments=("hi",),
                think_time=0.005,
                arrival=0.001,
                stale_every=stale_every,
                retry=RetryPolicy(max_attempts=3, timeout=timeout, backoff=backoff),
            )
            .at(crash_at, crash("server-1"))
            .at(0.05, edit("Echo", op("added_mid_run")))
            .at(crash_at + 0.05, restart("server-1"))
        )
        if partition_too:
            scenario = scenario.at(0.03, partition("server-2")).at(
                0.06, heal("server-2")
            )
        obs = Observability()
        scenario.run(obs=obs)
        attributions, dropped = attribute_calls(obs)
        assert dropped == 0
        for attribution in attributions:
            assert attribution.residual_ns == 0
            assert (
                sum(attribution.components[name] for name in RTT_COMPONENTS)
                == attribution.rtt_ns
            )
            for name in ("stall", "core_wait", "cpu", "backoff"):
                assert attribution.components[name] >= 0


class TestDiffAndDominant:
    def test_identical_runs_diff_to_no_regression(self):
        first, second = Observability(), Observability()
        _drill().run(obs=first)
        _drill().run(obs=second)
        diff = diff_profiles(first, second)
        assert diff.dominant is None
        assert all(
            row["delta_mean_s"] == 0.0 for row in diff.components.values()
        )

    def test_dominant_component_names_the_largest_regression(self):
        before = {name: 0.001 for name in ALL_COMPONENTS}
        now = dict(before, stall=0.004, network=0.002)
        assert dominant_component(before, now) == ("stall", 0.001, 0.004)
        # Nothing regressed -> None; missing blobs -> None.
        assert dominant_component(now, before) is None
        assert dominant_component(None, now) is None
        assert dominant_component(before, None) is None
        # Ties break on the lexicographically first component name.
        tied = dict(before, cpu=0.002, network=0.002)
        assert dominant_component(before, tied)[0] == "cpu"

    def test_run_all_reimplementation_stays_in_sync(self):
        # benchmarks/run_all.py duplicates dominant_component so the runner
        # imports without the package on sys.path; this pins the parity.
        path = Path(__file__).resolve().parents[2] / "benchmarks" / "run_all.py"
        spec = importlib.util.spec_from_file_location("run_all_under_test", path)
        run_all = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(run_all)
        cases = [
            ({n: 0.001 for n in ALL_COMPONENTS}, {n: 0.001 for n in ALL_COMPONENTS}),
            (
                {n: 0.001 for n in ALL_COMPONENTS},
                dict({n: 0.001 for n in ALL_COMPONENTS}, core_wait=0.009),
            ),
            ({"network": 0.002}, {"network": 0.001}),
            ({}, {"network": 0.001}),
        ]
        for before, now in cases:
            assert run_all.dominant_component(before, now) == dominant_component(
                before, now
            )

    def test_bench_profile_diff_compares_the_last_two_blobs(self):
        blob = lambda stall: {
            "network": 0.001,
            "stall": stall,
            "core_wait": 0.0,
            "cpu": 0.0,
            "backoff": 0.0,
            "rebind": 0.0,
            "rtt": 0.001 + stall,
        }
        trajectory = {
            "runs": [
                {"quick": True, "benchmarks": [{"name": "drill", "extra_info": {"obs_profile": blob(0.001)}}]},
                {"quick": False, "benchmarks": [{"name": "drill", "extra_info": {"obs_profile": blob(0.5)}}]},
                {"quick": True, "benchmarks": [{"name": "drill", "extra_info": {"obs_profile": blob(0.003)}}]},
                {"quick": True, "benchmarks": [{"name": "fresh", "extra_info": {"obs_profile": blob(0.0)}}]},
            ]
        }
        diffs = bench_profile_diff(trajectory, quick=True)
        assert diffs["drill"]["status"] == "compared"
        # The full-mode run in the middle must not pollute the quick series.
        assert diffs["drill"]["previous"]["stall"] == 0.001
        assert diffs["drill"]["dominant_component"] == "stall"
        assert diffs["drill"]["deltas"]["stall"] == pytest.approx(0.002)
        assert diffs["fresh"]["status"] == "first-appearance"
        assert bench_profile_diff(trajectory, quick=False) == {
            "drill": {"status": "first-appearance", "current": blob(0.5)}
        }


class TestAnalyzeCLI:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        obs = Observability()
        scenario = _drill().slo(
            latency_slo("cli-latency", threshold_s=0.01, objective=0.99),
            recency_slo("cli-recency"),
        )
        report = scenario.run(obs=obs)
        jsonl = obs.export_jsonl(tmp_path / "spans.jsonl")
        metrics = obs.export_metrics(tmp_path / "metrics.json")
        return obs, report, jsonl, metrics, tmp_path

    def test_profile_subcommand(self, artifacts, capsys):
        obs, _report, jsonl, _metrics, tmp_path = artifacts
        out_json = tmp_path / "profile.json"
        assert analyze_main(["profile", str(jsonl), "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "calls attributed: 48" in out
        assert "max residual 0 ns" in out
        payload = json.loads(out_json.read_text())
        assert payload == obs.profile().to_dict()

    def test_diff_subcommand(self, artifacts, capsys):
        _obs, _report, jsonl, _metrics, tmp_path = artifacts
        out_json = tmp_path / "diff.json"
        code = analyze_main(
            ["diff", str(jsonl), str(jsonl), "--json", str(out_json)]
        )
        assert code == 0
        assert "no component regressed" in capsys.readouterr().out
        assert json.loads(out_json.read_text())["dominant_component"] is None

    def test_slo_subcommand_reevaluates_offline(self, artifacts, capsys):
        _obs, report, _jsonl, metrics, tmp_path = artifacts
        out_json = tmp_path / "slo.json"
        assert analyze_main(["slo", str(metrics), "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "cli-latency" in out and "cli-recency" in out
        # The offline verdicts are byte-identical to the in-run ones.
        assert json.loads(out_json.read_text()) == [
            result.to_dict() for result in report.slo_results
        ]

    def test_slo_check_exit_codes(self, artifacts, tmp_path):
        _obs, report, _jsonl, metrics, _tmp = artifacts
        # The 10ms objective is deliberately unmeetable in the fault drill.
        assert report.slo("cli-latency").breached
        assert analyze_main(["slo", str(metrics), "--check"]) == 1
        # A metrics export without embedded SLOs: nothing to check.
        bare = Observability()
        _drill().run(obs=bare)
        bare_path = bare.export_metrics(tmp_path / "bare-metrics.json")
        assert analyze_main(["slo", str(bare_path)]) == 0
        assert analyze_main(["slo", str(bare_path), "--check"]) == 2
