"""SLO engine tests: declarations, burn-rate math, scenario wiring, export.

The burn-rate arithmetic is pinned against hand-built cumulative series
(the gauges are cumulative good/total counters, so window fractions are
differences against the sample at the window start), and the scenario
integration proves the declarative path: ``Scenario.slo(...)`` →
sampler gauges → ``ClusterReport.slo_results`` → offline re-evaluation
from the exported metrics JSON, byte-identical at every step.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.cluster.presets import fault_drill_scenario
from repro.errors import ReproError
from repro.obs import ObsConfig, Observability
from repro.obs.metrics import MetricsReport
from repro.obs.slo import (
    SLO,
    BurnWindow,
    availability_slo,
    default_windows,
    evaluate_slo,
    evaluate_slos,
    format_results,
    latency_slo,
    recency_slo,
)


def _report(times, good, total, name="x", interval=0.01) -> MetricsReport:
    return MetricsReport(
        interval=interval,
        times=tuple(times),
        series={
            f"slo.{name}.good": tuple(good),
            f"slo.{name}.total": tuple(total),
        },
    )


class TestDeclarations:
    def test_builders_set_kind_and_series_names(self):
        slo = latency_slo("p99", threshold_s=0.04)
        assert slo.kind == "latency" and slo.objective == 0.99
        assert slo.good_series == "slo.p99.good"
        assert slo.total_series == "slo.p99.total"
        assert availability_slo("avail").kind == "availability"
        recency = recency_slo("fresh")
        assert recency.kind == "recency" and recency.objective == 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            SLO(name="bad", kind="throughput", objective=0.99)

    def test_objective_must_be_a_fraction(self):
        for objective in (0.0, -0.1, 1.5):
            with pytest.raises(ReproError):
                availability_slo("bad", objective=objective)

    def test_latency_needs_a_threshold(self):
        with pytest.raises(ReproError):
            SLO(name="bad", kind="latency", objective=0.99)

    def test_dict_round_trip_preserves_windows(self):
        slo = latency_slo(
            "p95",
            threshold_s=0.02,
            objective=0.95,
            service="Echo",
            windows=[BurnWindow(long_s=0.1, short_s=0.01, factor=4.0)],
        )
        assert SLO.from_dict(slo.to_dict()) == slo


class TestDefaultWindows:
    def test_deterministic_span_fractions(self):
        assert default_windows(1.0) == (
            BurnWindow(long_s=0.25, short_s=0.05, factor=4.0),
            BurnWindow(long_s=0.50, short_s=0.10, factor=2.0),
        )

    def test_empty_span_has_no_windows(self):
        assert default_windows(0.0) == ()
        assert default_windows(-1.0) == ()


class TestEvaluation:
    def test_end_of_run_compliance_and_breach(self):
        slo = availability_slo("x", objective=0.95)
        metrics = _report([0.0, 0.01], good=[50, 90], total=[50, 100])
        result = evaluate_slo(metrics, slo)
        assert result.good == 90 and result.total == 100
        assert result.compliance == pytest.approx(0.9)
        assert result.breached and not result.ok

    def test_zero_traffic_is_compliant(self):
        slo = availability_slo("x", objective=0.999)
        result = evaluate_slo(_report([0.0, 0.01], [0, 0], [0, 0]), slo)
        assert result.compliance == 1.0
        assert not result.breached and not result.alerts

    def test_missing_series_flagged_not_crashed(self):
        slo = availability_slo("elsewhere")
        result = evaluate_slo(_report([0.0], [1], [1], name="x"), slo)
        assert result.missing and not result.breached
        assert "no data" in format_results([result])

    def test_no_metrics_at_all(self):
        slos = [availability_slo("a"), recency_slo("b")]
        results = evaluate_slos(None, slos)
        assert [r.missing for r in results] == [True, True]

    def test_burn_alert_fires_on_a_sustained_bad_burst(self):
        # 10 events per sample; everything good until t=0.05, then every
        # event bad: the bad fraction saturates both windows.
        times = [round(i * 0.01, 2) for i in range(10)]
        total = [10 * (i + 1) for i in range(10)]
        good = [min(t, 50) for t in total]
        slo = availability_slo(
            "x",
            objective=0.9,
            windows=[BurnWindow(long_s=0.05, short_s=0.01, factor=2.0)],
        )
        result = evaluate_slo(_report(times, good, total), slo)
        assert result.breached
        (alert,) = result.alerts
        assert alert.factor == 2.0
        # t=0.05 is the first bad sample but the long window's burn is
        # still diluted by the good prefix; one sample later both windows
        # burn past the factor.
        assert alert.first_at == pytest.approx(0.06)
        assert alert.samples > 0
        assert alert.peak_burn >= 2.0
        assert math.isfinite(alert.peak_burn)

    def test_no_alert_when_the_budget_is_unburned(self):
        times = [round(i * 0.01, 2) for i in range(10)]
        total = [10 * (i + 1) for i in range(10)]
        slo = availability_slo(
            "x",
            objective=0.9,
            windows=[BurnWindow(long_s=0.05, short_s=0.01, factor=1.0)],
        )
        result = evaluate_slo(_report(times, total, total), slo)
        assert not result.breached and not result.alerts

    def test_perfection_objective_burns_huge_but_finite(self):
        # objective == 1.0 has zero budget: the floor keeps the burn rate
        # enormous yet finite, so the result stays JSON-serialisable.
        slo = recency_slo(
            "x", windows=[BurnWindow(long_s=0.02, short_s=0.01, factor=2.0)]
        )
        metrics = _report([0.0, 0.01], good=[10, 19], total=[10, 20])
        result = evaluate_slo(metrics, slo)
        assert result.breached
        (alert,) = result.alerts
        assert alert.peak_burn > 1e6
        assert math.isfinite(alert.peak_burn)
        json.dumps(result.to_dict())


class TestScenarioIntegration:
    def _scenario(self):
        return fault_drill_scenario(clients=8, servers=2).slo(
            latency_slo("fleet-latency", threshold_s=0.08, objective=0.5),
            availability_slo("fleet-availability", objective=0.999),
            recency_slo("fleet-recency"),
            availability_slo("soap-availability", service="EchoSoap"),
        )

    def test_declared_slos_land_on_the_report(self):
        report = self._scenario().run(obs=True)
        assert {r.name for r in report.slo_results} == {
            "fleet-availability",
            "fleet-latency",
            "fleet-recency",
            "soap-availability",
        }
        availability = report.slo("fleet-availability")
        assert not availability.missing
        assert availability.total == report.total_calls
        assert report.slo("fleet-recency").ok
        with pytest.raises(KeyError):
            report.slo("undeclared")

    def test_service_filter_counts_one_service_only(self):
        report = self._scenario().run(obs=True)
        scoped = report.slo("soap-availability")
        fleet = report.slo("fleet-availability")
        # Half the mixed fleet speaks SOAP: the scoped gauge saw only them.
        assert 0 < scoped.total < fleet.total
        assert scoped.total == sum(
            c.calls for c in report.clients if c.name.startswith("soap")
        ) or scoped.total == fleet.total / 2

    def test_results_are_deterministic_run_to_run(self):
        first = self._scenario().run(obs=True)
        second = self._scenario().run(obs=True)
        assert [r.to_dict() for r in first.slo_results] == [
            r.to_dict() for r in second.slo_results
        ]

    def test_explicit_obs_config_slos_win_over_the_scenario(self):
        obs = Observability(ObsConfig(slos=(availability_slo("explicit"),)))
        report = self._scenario().run(obs=obs)
        assert [r.name for r in report.slo_results] == ["explicit"]

    def test_plain_observability_inherits_scenario_slos(self):
        obs = Observability()
        report = self._scenario().run(obs=obs)
        assert "fleet-recency" in {r.name for r in report.slo_results}

    def test_metrics_disabled_yields_missing_results(self):
        obs = Observability(ObsConfig(metrics=False, slos=(recency_slo("r"),)))
        report = fault_drill_scenario(clients=8, servers=2).run(obs=obs)
        assert report.metrics is None
        (result,) = report.slo_results
        assert result.missing

    def test_no_slos_means_no_results(self):
        report = fault_drill_scenario(clients=8, servers=2).run(obs=True)
        assert report.slo_results == []

    def test_export_embeds_declarations_for_offline_replay(self, tmp_path):
        obs = Observability()
        report = self._scenario().run(obs=obs)
        path = obs.export_metrics(tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        slos = [SLO.from_dict(spec) for spec in payload["slos"]]
        assert {slo.name for slo in slos} == {r.name for r in report.slo_results}
        rebuilt = MetricsReport(
            interval=payload["interval"],
            times=tuple(payload["times"]),
            series={k: tuple(v) for k, v in payload["series"].items()},
        )
        offline = evaluate_slos(rebuilt, slos)
        assert [r.to_dict() for r in offline] == [
            r.to_dict() for r in report.slo_results
        ]
