"""Golden-file test for the Chrome ``trace_event`` exporter.

The Perfetto-facing format is a contract with an external tool: field
names (``ph``, ``ts``, ``dur``, ``cat``, ``args``), the microsecond time
base, the complete-vs-instant phase split and the node-vs-kind track
assignment must not drift silently.  The span set is built by hand on a
fake clock (no simulation, no scenario churn) and the rendered payload is
compared byte-for-byte against ``golden_chrome_trace.json``.

If the exporter changes *deliberately*, regenerate the golden with::

    PYTHONPATH=src python tests/obs/test_export_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.export import chrome_trace_events, export_chrome_trace
from repro.obs.spans import (
    KIND_ATTEMPT,
    KIND_CALL,
    KIND_SERVER,
    Tracer,
)

GOLDEN = Path(__file__).with_name("golden_chrome_trace.json")


class _Clock:
    """A settable stand-in for the scheduler's virtual clock."""

    def __init__(self) -> None:
        self.now = 0.0


def build_reference_spans():
    """A small, fully hand-timed span tree covering every exporter branch:
    a complete call/attempt/server chain, an in-span point event, a span
    with a node track, a zero-duration completed span and an instant."""
    clock = _Clock()
    tracer = Tracer(clock, capacity=64)

    clock.now = 0.001
    call = tracer.begin(
        "echo",
        KIND_CALL,
        attrs={"client": "client-0", "service": "Echo", "protocol": "soap"},
    )
    clock.now = 0.0015
    attempt = tracer.begin(
        "echo",
        KIND_ATTEMPT,
        parent=call,
        attrs={"attempt": 1, "replica": 0, "node": "server-1", "tier": None},
    )
    attempt.add_event(0.0016, "transport.send", {"to": "server-1", "bytes": 128})
    clock.now = 0.002
    server = tracer.begin(
        "server.echo",
        KIND_SERVER,
        parent=attempt.context,
        attrs={"node": "server-1", "class": "Echo_v1", "queued": False},
    )
    clock.now = 0.004
    tracer.end(server, {"outcome": "result", "cpu_from": 0.004, "cpu_until": 0.0045})
    clock.now = 0.005
    tracer.end(attempt, {"outcome": "success"})
    tracer.end(call, {"outcome": "success"})
    # A degenerate complete span (start == end) renders as an instant too.
    zero = tracer.begin("rollout.wave", KIND_CALL, attrs={"wave": 2})
    tracer.end(zero)
    clock.now = 0.006
    tracer.instant("fault.crash", attrs={"node": "server-1"})
    return tracer.spans


def render_payload() -> dict:
    return {
        "traceEvents": chrome_trace_events(build_reference_spans()),
        "displayTimeUnit": "ms",
    }


class TestChromeExporterGolden:
    def test_payload_matches_the_golden_file(self):
        assert render_payload() == json.loads(GOLDEN.read_text())

    def test_export_writes_the_same_payload(self, tmp_path):
        path = export_chrome_trace(build_reference_spans(), tmp_path / "trace.json")
        assert json.loads(path.read_text()) == json.loads(GOLDEN.read_text())

    def test_phases_and_tracks(self):
        events = chrome_trace_events(build_reference_spans())
        by_key = {(event["name"], event["cat"]): event for event in events}
        # Timed spans are complete events on the microsecond time base.
        call = by_key[("echo", "call")]
        attempt = by_key[("echo", "attempt")]
        server = by_key[("server.echo", "server")]
        assert call["ph"] == attempt["ph"] == server["ph"] == "X"
        assert server["ts"] == 0.002 * 1e6 and server["dur"] == (0.004 - 0.002) * 1e6
        # Server and attempt work land on the node's track; client work on
        # the kind's.
        assert server["tid"] == attempt["tid"] == "server-1"
        assert call["tid"] == "call"
        # Instants and zero-duration spans use the instant phase.
        assert by_key[("fault.crash", "instant")]["ph"] == "i"
        assert by_key[("rollout.wave", "call")]["ph"] == "i"
        # In-span point events ride along with their owner's span id.
        send = by_key[("transport.send", "event")]
        assert send["ph"] == "i"
        assert send["args"]["span_id"] == attempt["args"]["span_id"]
        # Causality is preserved through args.
        assert server["args"]["parent_id"] == attempt["args"]["span_id"]
        assert attempt["args"]["parent_id"] == call["args"]["span_id"]


if __name__ == "__main__":
    GOLDEN.write_text(json.dumps(render_payload(), indent=2) + "\n")
    print(f"regenerated {GOLDEN}")
