"""Unit tests for the :mod:`repro.obs` building blocks.

Context tokens, the tracer's bounded ring, the metrics sampler's tick
machinery, the flight recorder's dump budget and the two exporters — each
exercised in isolation against a bare :class:`~repro.sim.Scheduler`.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    FlightRecorder,
    MetricsSampler,
    ObsConfig,
    Observability,
    TraceContext,
    Tracer,
    chrome_trace_events,
    export_chrome_trace,
    export_metrics_json,
    export_spans_jsonl,
)
from repro.obs.spans import KIND_ATTEMPT, KIND_CALL, KIND_INSTANT
from repro.sim import Scheduler


class TestTraceContext:
    def test_roundtrip_str_and_bytes(self):
        context = TraceContext(trace_id=255, span_id=16)
        assert context.encode() == "ff.10"
        assert context.encode_bytes() == b"ff.10"
        assert TraceContext.decode("ff.10") == context
        assert TraceContext.decode(b"ff.10") == context

    @pytest.mark.parametrize(
        "token",
        [None, "", b"", "deadbeef", "zz.1", "1.zz", ".", "1.", ".1", b"\xff\xfe.1"],
    )
    def test_malformed_tokens_decode_to_none(self, token):
        """Tolerance contract: junk degrades to "no parent", never a fault."""
        assert TraceContext.decode(token) is None


class TestTracerRing:
    def _tracer(self, capacity=4096):
        return Tracer(Scheduler(), capacity=capacity)

    def test_parentless_span_roots_its_own_trace(self):
        tracer = self._tracer()
        root = tracer.begin("call", KIND_CALL)
        child = tracer.begin("attempt", KIND_ATTEMPT, parent=root)
        assert root.trace_id == root.span_id
        assert root.parent_id is None
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        # A wire context parents the same way a local span does.
        remote = tracer.begin("server", KIND_ATTEMPT, parent=child.context)
        assert remote.trace_id == root.trace_id
        assert remote.parent_id == child.span_id

    def test_ring_evicts_oldest_but_counts_everything(self):
        tracer = self._tracer(capacity=8)
        for index in range(20):
            tracer.end(tracer.begin(f"span-{index}", KIND_CALL))
        assert len(tracer.finished) == 8
        assert tracer.finished_count == 20
        assert [span.name for span in tracer.spans] == [
            f"span-{index}" for index in range(12, 20)
        ]

    def test_open_spans_until_ended(self):
        tracer = self._tracer()
        span = tracer.begin("call", KIND_CALL)
        assert tracer.open_spans == [span]
        tracer.end(span, {"outcome": "success"})
        assert tracer.open_spans == []
        assert span.attrs["outcome"] == "success"
        assert span.end is not None

    def test_instant_is_zero_duration(self):
        tracer = self._tracer()
        span = tracer.instant("fault.crash", attrs={"node": "server-1"})
        assert span.kind == KIND_INSTANT
        assert span.end == span.start

    def test_fingerprint_is_deterministic_and_state_sensitive(self):
        def build():
            tracer = self._tracer()
            root = tracer.begin("call", KIND_CALL, attrs={"client": "c0"})
            root.add_event(0.0, "transport.send", {"bytes": 64})
            tracer.end(root, {"outcome": "success"})
            tracer.instant("fault.crash", attrs={"node": "server-1"})
            return tracer

        assert build().fingerprint() == build().fingerprint()
        extra = build()
        extra.instant("fault.heal")
        assert extra.fingerprint() != build().fingerprint()

    def test_trees_group_by_trace(self):
        tracer = self._tracer()
        first = tracer.begin("a", KIND_CALL)
        second = tracer.begin("b", KIND_CALL)
        child = tracer.begin("a.1", KIND_ATTEMPT, parent=first)
        for span in (child, first, second):
            tracer.end(span)
        trees = tracer.trees()
        assert set(trees) == {first.trace_id, second.trace_id}
        assert [span.name for span in trees[first.trace_id]] == ["a.1", "a"]


class TestMetricsSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ReproError):
            MetricsSampler(Scheduler(), interval=0.0)

    def test_samples_gauges_at_fixed_interval(self):
        scheduler = Scheduler()
        sampler = MetricsSampler(scheduler, interval=0.01)
        reads = {"count": 0}

        def gauge():
            reads["count"] += 1
            return float(reads["count"])

        sampler.register("g", gauge)
        sampler.start()
        scheduler.run_for(0.055)
        sampler.stop()
        report = sampler.report()
        assert report.times == (0.01, 0.02, 0.03, 0.04, 0.05)
        assert report.series["g"] == (1.0, 2.0, 3.0, 4.0, 5.0)
        assert "g" in repr(report) or report.interval == 0.01

    def test_stop_cancels_future_ticks(self):
        scheduler = Scheduler()
        sampler = MetricsSampler(scheduler, interval=0.01)
        sampler.register("g", lambda: 1.0)
        sampler.start()
        scheduler.run_for(0.025)
        sampler.stop()
        scheduler.run_for(0.05)
        assert sampler.sample_count == 2

    def test_series_ring_is_bounded(self):
        scheduler = Scheduler()
        sampler = MetricsSampler(scheduler, interval=0.01, max_samples=4)
        sampler.register("g", lambda: scheduler.now)
        sampler.start()
        scheduler.run_for(0.1)
        sampler.stop()
        report = sampler.report()
        assert len(report.times) == 4
        assert report.times[-1] == pytest.approx(0.1)
        assert len(report.series["g"]) == 4

    def test_fingerprint_tracks_series_state(self):
        def sample(values):
            scheduler = Scheduler()
            sampler = MetricsSampler(scheduler, interval=0.01)
            iterator = iter(values)
            sampler.register("g", lambda: next(iterator))
            sampler.start()
            scheduler.run_for(0.01 * len(values))
            sampler.stop()
            return sampler.report()

        assert sample([1.0, 2.0]).fingerprint() == sample([1.0, 2.0]).fingerprint()
        assert sample([1.0, 2.0]).fingerprint() != sample([1.0, 3.0]).fingerprint()


class TestFlightRecorder:
    def _recorder(self, tmp_path=None, max_dumps=8):
        tracer = Tracer(Scheduler())
        tracer.end(tracer.begin("call", KIND_CALL, attrs={"client": "c0"}))
        tracer.begin("open", KIND_CALL)
        return FlightRecorder(tracer, dump_dir=tmp_path, max_dumps=max_dumps)

    def test_trip_snapshots_ring_and_open_spans(self):
        recorder = self._recorder()
        dump = recorder.trip("recency-violation", client="c0", replica=1, tier="fresh")
        assert dump["reason"] == "recency-violation"
        assert dump["detail"] == {"client": "c0", "replica": 1, "tier": "fresh"}
        assert [span["name"] for span in dump["spans"]] == ["call"]
        assert [span["name"] for span in dump["open_spans"]] == ["open"]
        assert recorder.dumps == [dump]

    def test_dump_budget_suppresses_a_storm(self):
        recorder = self._recorder(max_dumps=2)
        assert recorder.trip("recency-violation") is not None
        assert recorder.trip("recency-violation") is not None
        assert recorder.trip("recency-violation") is None
        assert recorder.trip("recency-violation") is None
        assert len(recorder.dumps) == 2
        assert recorder.suppressed_trips == 2

    def test_dump_dir_writes_deterministic_file_names(self, tmp_path):
        recorder = self._recorder(tmp_path=tmp_path)
        dump = recorder.trip("no-alive-replica-storm", service="Echo")
        path = tmp_path / "flight-001-no-alive-replica-storm.json"
        assert path.exists()
        assert dump["path"] == str(path)
        loaded = json.loads(path.read_text())
        assert loaded["reason"] == "no-alive-replica-storm"
        assert loaded["detail"]["service"] == "Echo"


class TestExporters:
    def _spans(self):
        tracer = Tracer(Scheduler())
        root = tracer.begin("echo", KIND_CALL, attrs={"client": "c0"})
        root.add_event(0.0, "transport.send", {"bytes": 64})
        tracer.end(root)
        tracer.instant("fault.crash", attrs={"node": "server-1"})
        return tracer.spans

    def test_jsonl_one_object_per_span(self, tmp_path):
        path = export_spans_jsonl(self._spans(), tmp_path / "spans.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "echo"
        assert first["events"][0]["name"] == "transport.send"

    def test_chrome_events_use_microseconds_and_phases(self):
        events = chrome_trace_events(self._spans())
        by_phase = {event["ph"] for event in events}
        assert by_phase <= {"X", "i"}
        instant = next(event for event in events if event["name"] == "fault.crash")
        assert instant["ph"] == "i"
        assert instant["tid"] == "server-1"
        send = next(event for event in events if event["name"] == "transport.send")
        assert send["cat"] == "event"

    def test_chrome_trace_file_is_perfetto_shaped(self, tmp_path):
        path = export_chrome_trace(self._spans(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert payload["traceEvents"]

    def test_metrics_json_carries_fingerprint(self, tmp_path):
        scheduler = Scheduler()
        sampler = MetricsSampler(scheduler, interval=0.01)
        sampler.register("g", lambda: 1.0)
        sampler.start()
        scheduler.run_for(0.03)
        sampler.stop()
        report = sampler.report()
        path = export_metrics_json(report, tmp_path / "metrics.json")
        payload = json.loads(path.read_text())
        assert payload["fingerprint"] == report.fingerprint()
        assert payload["series"]["g"] == [1.0, 1.0, 1.0]


class TestObservabilityResolve:
    def test_off_values_resolve_to_none(self):
        assert Observability.resolve(None) is None
        assert Observability.resolve(False) is None

    def test_on_values_resolve_to_instances(self):
        assert isinstance(Observability.resolve(True), Observability)
        config = ObsConfig(sample_interval=0.5)
        resolved = Observability.resolve(config)
        assert resolved.config is config
        instance = Observability()
        assert Observability.resolve(instance) is instance

    def test_junk_rejected(self):
        with pytest.raises(ReproError):
            Observability.resolve("yes")
