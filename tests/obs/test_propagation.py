"""In-band context propagation over both wire formats.

The SOAP channel is a ``<repro:TraceContext>`` block in ``soapenv:Header``;
the GIOP channel is a trailing service-context slot on the request
message.  Both must roundtrip the token verbatim — and, crucially, leave
the wire **byte-identical** to the pre-observability format when no
context is attached, so enabling the subsystem never moves an unobserved
scenario's fingerprints.
"""

from __future__ import annotations

from repro.corba.giop import RequestMessage, parse_message
from repro.obs import TraceContext
from repro.soap.envelope import TRACE_NAMESPACE, SoapRequest


class TestSoapHeaderChannel:
    def test_context_roundtrips_through_header_block(self):
        request = SoapRequest.for_call("echo", ("hi",), namespace="urn:test")
        request.trace_context = TraceContext(3, 7).encode()
        xml = request.to_xml()
        assert TRACE_NAMESPACE in xml
        parsed = SoapRequest.from_xml(xml)
        assert parsed.trace_context == "3.7"
        assert parsed.operation == "echo"
        assert parsed.arguments == ("hi",)
        assert TraceContext.decode(parsed.trace_context) == TraceContext(3, 7)

    def test_no_context_means_no_header_element(self):
        xml = SoapRequest.for_call("echo", ("hi",)).to_xml()
        assert "Header" not in xml
        assert SoapRequest.from_xml(xml).trace_context is None

    def test_context_does_not_disturb_body_bytes(self):
        plain = SoapRequest.for_call("echo", ("hi",))
        traced = SoapRequest.for_call("echo", ("hi",))
        traced.trace_context = "1.2"
        plain_xml, traced_xml = plain.to_xml(), traced.to_xml()
        assert plain_xml != traced_xml
        # Stripping the header recovers the untraced document exactly.
        reparsed = SoapRequest.from_xml(traced_xml)
        reparsed.trace_context = None
        assert reparsed.to_xml() == plain_xml


class TestGiopServiceContextChannel:
    def test_context_roundtrips_through_service_context_slot(self):
        request = RequestMessage(
            7, "Echo", "echo", b"", service_context=TraceContext(3, 7).encode_bytes()
        )
        parsed = parse_message(request.to_bytes())
        assert parsed.service_context == b"3.7"
        assert parsed.request_id == 7
        assert TraceContext.decode(parsed.service_context) == TraceContext(3, 7)

    def test_empty_context_is_not_framed(self):
        """The slot is trailing and optional: an untraced request's bytes
        are identical to the pre-observability wire format."""
        bare = RequestMessage(1, "Echo", "echo", b"abc")
        explicit = RequestMessage(1, "Echo", "echo", b"abc", service_context=b"")
        assert bare.to_bytes() == explicit.to_bytes()
        traced = RequestMessage(1, "Echo", "echo", b"abc", service_context=b"1.2")
        assert len(traced.to_bytes()) > len(bare.to_bytes())
        assert parse_message(bare.to_bytes()).service_context == b""
