"""Integration tests for the Figure 7/8 analyses and the experiment drivers."""

import pytest

from repro.core.protocol import (
    ActivePublishingExperiment,
    ReactivePublishingExperiment,
    run_figure7_matrix,
    run_figure8_matrix,
)
from repro.experiments import (
    PAPER_TABLE1_RTT,
    run_encoding_comparison,
    run_interface_generation_sweep,
    run_publication_strategy_comparison,
    run_stale_flood,
)
from repro.experiments.table1 import run_sde_soap, run_static_soap, run_table1


class TestFigure7:
    def test_only_three_combinations_consistent(self):
        results = run_figure7_matrix()
        assert len(results) == 9
        consistent = {result.label for result in results if result.consistent}
        assert consistent == ActivePublishingExperiment.expected_consistent_labels()

    def test_every_result_has_explanation(self):
        assert all(result.detail for result in run_figure7_matrix())

    def test_unknown_combination_rejected(self):
        with pytest.raises(ValueError):
            ActivePublishingExperiment().run_single("4", "i")


class TestFigure8:
    def test_all_soap_interleavings_satisfy_guarantee(self):
        results = run_figure8_matrix("soap")
        assert len(results) == 16
        assert all(result.consistent for result in results)

    def test_all_corba_interleavings_satisfy_guarantee(self):
        results = run_figure8_matrix("corba")
        assert len(results) == 16
        assert all(result.consistent for result in results)

    def test_single_run_exposes_versions(self):
        record = ReactivePublishingExperiment().run_single("2", "ii")
        assert record.guarantee_satisfied
        assert record.client_version_after_call >= record.server_version_in_fault
        assert record.change_visible_to_developer


class TestTable1Experiment:
    def test_shape_matches_paper(self):
        results = {r.configuration: r.mean_rtt for r in run_table1(calls=10)}
        # CORBA beats SOAP for both static and SDE servers.
        assert results["OpenORB/OpenORB"] < results["Axis-Tomcat/Axis"]
        assert results["SDE CORBA/OpenORB"] < results["SDE SOAP/Axis"]
        # SDE adds overhead, but stays within ~25% of the static baseline.
        soap_overhead = results["SDE SOAP/Axis"] / results["Axis-Tomcat/Axis"] - 1
        corba_overhead = results["SDE CORBA/OpenORB"] / results["OpenORB/OpenORB"] - 1
        assert 0 < soap_overhead <= 0.25
        assert 0 < corba_overhead <= 0.25

    def test_absolute_values_in_paper_ballpark(self):
        """Not asserted tightly — the substrate is a simulator — but the
        calibrated model should land within 35% of each paper value."""
        for result in run_table1(calls=10):
            assert result.mean_rtt == pytest.approx(result.paper_rtt, rel=0.35)

    def test_individual_drivers_agree_with_batch(self):
        batch = {r.configuration: r.mean_rtt for r in run_table1(calls=5)}
        assert run_static_soap(calls=5).mean_rtt == pytest.approx(batch["Axis-Tomcat/Axis"], rel=0.05)
        assert run_sde_soap(calls=5).mean_rtt == pytest.approx(batch["SDE SOAP/Axis"], rel=0.05)

    def test_paper_reference_values_present(self):
        assert set(PAPER_TABLE1_RTT) == {
            "SDE SOAP/Axis",
            "Axis-Tomcat/Axis",
            "SDE CORBA/OpenORB",
            "OpenORB/OpenORB",
        }


class TestPublicationStrategyAblation:
    def test_stable_timeout_publishes_far_less_than_change_driven(self):
        results = {r.strategy: r for r in run_publication_strategy_comparison()}
        stable = results["stable-timeout"]
        change_driven = results["change-driven"]
        assert stable.publications < change_driven.publications
        assert stable.transient_publications == 0
        assert change_driven.transient_publications > 0

    def test_all_strategies_eventually_publish_final_interface(self):
        for result in run_publication_strategy_comparison():
            assert result.final_interface_published

    def test_stable_timeout_staleness_bounded_by_timeout_plus_generation(self):
        results = {r.strategy: r for r in run_publication_strategy_comparison(timeout=5.0, generation_cost=0.25)}
        assert results["stable-timeout"].staleness_after_last_edit <= 5.0 + 2 * 0.25


class TestStaleFloodAblation:
    def test_flood_triggers_at_most_one_generation(self):
        result = run_stale_flood(stale_calls=25)
        assert result.non_existent_method_faults == 25
        assert result.generations <= 1
        assert result.generations_per_stale_call <= 1 / 25

    def test_no_generation_when_interface_already_current(self):
        result = run_stale_flood(stale_calls=10, change_interface_first=False)
        assert result.generations == 0
        assert result.non_existent_method_faults == 10


class TestEncodingAndGenerationSweeps:
    def test_soap_messages_larger_than_giop(self):
        for result in run_encoding_comparison():
            assert result.soap_total > result.giop_total
            assert result.size_ratio > 1.0

    def test_document_sizes_grow_with_interface_size(self):
        results = run_interface_generation_sweep((1, 10, 50))
        wsdl_sizes = [r.wsdl_bytes for r in results]
        idl_sizes = [r.idl_bytes for r in results]
        assert wsdl_sizes == sorted(wsdl_sizes)
        assert idl_sizes == sorted(idl_sizes)
        assert all(w > i for w, i in zip(wsdl_sizes, idl_sizes))
