"""End-to-end integration tests of the live development workflow (§4–§6)."""

import pytest

from repro.core.sde import SDEConfig
from repro.corba import CorbaServiceDefinition, StaticCorbaServer, StaticCorbaClient
from repro.errors import NonExistentMethodError
from repro.jpie import export_operation_table
from repro.rmitypes import DOUBLE, FieldDef, INT, STRING, StructType
from repro.soap import SoapServiceDefinition, StaticSoapServer, SoapClient
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


def calculator_operations():
    return [
        OperationSpec("add", (("a", INT), ("b", INT)), INT, body=lambda self, a, b: a + b),
        OperationSpec("scale", (("x", DOUBLE), ("k", DOUBLE)), DOUBLE, body=lambda self, x, k: x * k),
    ]


class TestLiveSoapWorkflow:
    def test_full_session(self, testbed):
        # 1. The developer extends SOAPServer; deployment is automatic.
        calculator, _instance = testbed.create_soap_server("Calculator", calculator_operations())
        assert testbed.sde.is_managed("Calculator")

        # 2. The interface is published after a stable interval.
        testbed.settle()
        publisher = testbed.sde.managed_server("Calculator").publisher
        assert publisher.is_published_current()

        # 3. A client connects through the published WSDL and calls methods.
        binding = testbed.connect_soap_client("Calculator")
        assert binding.invoke("add", 20, 22) == 42
        assert binding.invoke("scale", 2.5, 4.0) == 10.0

        # 4. The developer edits the running server: new method, new body.
        calculator.add_method(
            "concat", (), STRING, body=lambda self: "", distributed=True
        )
        from repro.interface import Parameter

        calculator.method("concat").set_parameters((Parameter("a", STRING), Parameter("b", STRING)))
        calculator.method("concat").set_body(lambda self, a, b: a + b)
        calculator.method("add").set_body(lambda self, a, b: a + b + 100)
        testbed.settle()

        # 5. Behaviour changes are live immediately; interface changes after refresh.
        assert binding.invoke("add", 1, 1) == 102
        binding.refresh()
        assert binding.invoke("concat", "foo", "bar") == "foobar"

    def test_server_state_survives_live_edits(self, testbed):
        counter = testbed.environment.create_class(
            "Counter", superclass=testbed.sde.soap_server_class
        )
        counter.add_field("count", INT, 0)
        counter.add_method(
            "increment", (), INT,
            body=lambda self: (self.set_field("count", self.get_field("count") + 1), self.get_field("count"))[1],
            distributed=True,
        )
        instance = counter.new_instance()
        testbed.settle()
        binding = testbed.connect_soap_client("Counter")
        assert binding.invoke("increment") == 1
        assert binding.invoke("increment") == 2
        # Live body change: increment by ten, state (count=2) is preserved.
        counter.method("increment").set_body(
            lambda self: (self.set_field("count", self.get_field("count") + 10), self.get_field("count"))[1]
        )
        assert binding.invoke("increment") == 12
        assert instance.get_field("count") == 12

    def test_multiple_managed_servers_coexist(self, testbed):
        testbed.create_soap_server("Alpha", calculator_operations())
        testbed.create_corba_server("Beta", calculator_operations())
        testbed.settle()
        soap_binding = testbed.connect_soap_client("Alpha")
        corba_binding = testbed.connect_corba_client("Beta")
        assert soap_binding.invoke("add", 1, 2) == 3
        assert corba_binding.invoke("add", 3, 4) == 7

    def test_struct_types_flow_through_published_interface(self, testbed):
        point = StructType("Point", (FieldDef("x", DOUBLE), FieldDef("y", DOUBLE)))
        norm_op = OperationSpec(
            "norm", (("p", point),), DOUBLE,
            body=lambda self, p: (p["x"] ** 2 + p["y"] ** 2) ** 0.5,
        )
        calculator, _instance = testbed.create_soap_server("Geometry", [norm_op])
        calculator.declare_struct(point)
        testbed.publish_now("Geometry")
        binding = testbed.connect_soap_client("Geometry")
        assert "Point" in binding.description.type_registry()
        assert binding.invoke("norm", {"x": 3.0, "y": 4.0}) == pytest.approx(5.0)


class TestLiveCorbaWorkflow:
    def test_full_session(self, testbed):
        mailer = testbed.environment.create_class(
            "MailService", superclass=testbed.sde.corba_server_class
        )
        mailer.add_field("outbox", INT, 0)
        mailer.add_method(
            "send", (), INT,
            body=lambda self: (self.set_field("outbox", self.get_field("outbox") + 1), self.get_field("outbox"))[1],
            distributed=True,
        )
        mailer.new_instance()
        testbed.settle()

        binding = testbed.connect_corba_client("MailService")
        assert binding.invoke("send") == 1

        # Live rename while the client still knows the old name.
        mailer.method("send").rename("deliver")
        with pytest.raises(NonExistentMethodError):
            binding.invoke("send")
        assert binding.description.has_operation("deliver")
        assert binding.invoke("deliver") == 2
        assert binding.guarantee_records[-1].satisfied

    def test_ior_remains_valid_across_interface_changes(self, testbed):
        mailer, _instance = testbed.create_corba_server("MailService", calculator_operations())
        testbed.publish_now("MailService")
        binding = testbed.connect_corba_client("MailService")
        ior_before = testbed.sde.interface_server.document(
            testbed.sde.managed_server("MailService").publisher.ior_path
        )
        mailer.add_method("ping", (), STRING, body=lambda self: "pong", distributed=True)
        testbed.settle()
        ior_after = testbed.sde.interface_server.document(
            testbed.sde.managed_server("MailService").publisher.ior_path
        )
        assert ior_before == ior_after
        binding.refresh()
        assert binding.invoke("ping") == "pong"


class TestExportToStaticServers:
    """§7: at the end of development the dynamic server is exported."""

    def test_export_soap_server(self, testbed):
        calculator, instance = testbed.create_soap_server("Calculator", calculator_operations())
        testbed.publish_now("Calculator")

        definition = SoapServiceDefinition("CalculatorExport", "urn:calc:export")
        for signature, implementation in export_operation_table(calculator, instance):
            definition.add_operation(signature, implementation)
        static_server = StaticSoapServer(testbed.server_host, 8200, definition)
        static_server.start()
        client = SoapClient(testbed.client_host)
        stub = client.connect(static_server.wsdl_url)
        assert stub.add(5, 6) == 11

    def test_export_corba_server(self, testbed):
        calculator, instance = testbed.create_corba_server("Calculator", calculator_operations())
        testbed.publish_now("Calculator")

        definition = CorbaServiceDefinition("CalculatorExport", "urn:calc:export")
        for signature, implementation in export_operation_table(calculator, instance):
            definition.add_operation(signature, implementation)
        static_server = StaticCorbaServer(testbed.server_host, 9300, definition)
        static_server.start()
        client = StaticCorbaClient(testbed.client_host)
        stub = client.connect(static_server.idl_document, static_server.ior)
        assert stub.add(7, 8) == 15


class TestFailureInjection:
    def test_partition_prevents_calls_but_not_local_edits(self):
        testbed = LiveDevelopmentTestbed(
            sde_config=SDEConfig(publication_timeout=1.0, generation_cost=0.05)
        )
        calculator, _instance = testbed.create_soap_server("Calculator", calculator_operations())
        testbed.publish_now("Calculator")
        binding = testbed.connect_soap_client("Calculator")
        assert binding.invoke("add", 1, 2) == 3

        testbed.network.partition("client", "server")
        with pytest.raises(Exception):
            binding.invoke("add", 1, 2)

        # Local development continues during the partition.
        calculator.add_method("ping", (), STRING, body=lambda self: "pong", distributed=True)
        testbed.settle()

        testbed.network.heal("client", "server")
        binding.refresh()
        assert binding.invoke("ping") == "pong"
