"""Integration tests for the performance model.

Covers the two observable guarantees the simulation-core fast path and the
bounded server-CPU model make together:

* the codec/scheduler optimizations change *nothing* about simulated time —
  a workload produces identical per-call RTTs with the SOAP fast path on or
  off;
* with ``server_cores=1`` the steady-state mean RTT grows monotonically
  with fleet size (the ROADMAP contention item), while the determinism
  contract (same spec → identical per-call RTTs at 32+ clients) holds.
"""

from __future__ import annotations

import pytest

from repro.experiments.multi_client import run_multi_client
from repro.net.latency import era_2004_cost_model
from repro.soap.envelope import set_fast_serialization


class TestFastPathRttIdentity:
    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_fast_serialization_does_not_change_rtts(self, technology):
        baseline = run_multi_client(technology, 4, calls_per_client=3)
        previous = set_fast_serialization(False)
        try:
            slow = run_multi_client(technology, 4, calls_per_client=3)
        finally:
            set_fast_serialization(previous)
        assert baseline.report.all_rtts == slow.report.all_rtts
        assert baseline.report.duration == slow.report.duration


class TestServerContention:
    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_single_core_rtt_grows_with_fleet_size(self, technology):
        rtts = []
        for clients in (1, 4, 8, 16):
            result = run_multi_client(
                technology,
                clients,
                calls_per_client=3,
                cost_model=era_2004_cost_model(),
                server_cores=1,
            )
            rtts.append(result.mean_rtt)
        assert all(a < b for a, b in zip(rtts, rtts[1:])), rtts

    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_unbounded_cores_keep_rtt_flat(self, technology):
        """Without the knob the seed behaviour is unchanged: processing in
        parallel, RTT essentially independent of fleet size."""
        small = run_multi_client(
            technology, 2, calls_per_client=3, cost_model=era_2004_cost_model()
        )
        large = run_multi_client(
            technology, 16, calls_per_client=3, cost_model=era_2004_cost_model()
        )
        assert large.mean_rtt == pytest.approx(small.mean_rtt, rel=0.15)
        assert small.server_cores is None

    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_contended_32_clients_deterministic(self, technology):
        kwargs = {
            "calls_per_client": 3,
            "cost_model": era_2004_cost_model(),
            "server_cores": 1,
        }
        first = run_multi_client(technology, 32, **kwargs)
        second = run_multi_client(technology, 32, **kwargs)
        assert first.report.all_rtts == second.report.all_rtts
        assert first.report.duration == second.report.duration

    def test_more_cores_reduce_queueing(self):
        one = run_multi_client(
            "soap", 8, calls_per_client=3,
            cost_model=era_2004_cost_model(), server_cores=1,
        )
        four = run_multi_client(
            "soap", 8, calls_per_client=3,
            cost_model=era_2004_cost_model(), server_cores=4,
        )
        assert four.mean_rtt < one.mean_rtt
        assert four.server_waited_seconds < one.server_waited_seconds
