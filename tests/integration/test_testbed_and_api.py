"""Tests for the public package surface and the convenience testbed."""

import pytest

import repro
from repro import INT, STRING, LiveDevelopmentTestbed, OperationSpec
from repro.core.sde import SDEConfig
from repro.errors import (
    DeploymentError,
    MiddlewareError,
    NonExistentMethodError,
    ReproError,
    ServerNotInitializedError,
    SoapError,
    CorbaError,
)


class TestPublicApi:
    def test_version_exported(self):
        assert repro.__version__ == "1.8.0"

    def test_quickstart_from_readme(self):
        testbed = LiveDevelopmentTestbed()
        calculator, _ = testbed.create_soap_server(
            "Calculator",
            [OperationSpec("add", (("a", INT), ("b", INT)), INT,
                           body=lambda self, a, b: a + b)],
        )
        testbed.settle()
        client = testbed.connect_soap_client("Calculator")
        assert client.invoke("add", 2, 3) == 5
        calculator.method("add").set_body(lambda self, a, b: (a + b) * 100)
        assert client.invoke("add", 2, 3) == 500

    def test_exception_hierarchy_rooted_at_repro_error(self):
        for exception_type in (
            MiddlewareError,
            NonExistentMethodError,
            ServerNotInitializedError,
            DeploymentError,
            SoapError,
            CorbaError,
        ):
            assert issubclass(exception_type, ReproError)

    def test_non_existent_method_error_carries_metadata(self):
        error = NonExistentMethodError("add", 7)
        assert error.operation == "add"
        assert error.interface_version == 7
        assert "add" in str(error) and "7" in str(error)


class TestTestbed:
    def test_default_hosts_and_clock(self):
        testbed = LiveDevelopmentTestbed()
        assert {host.name for host in testbed.network.hosts} == {"server", "client"}
        assert testbed.now == 0.0
        testbed.run_for(1.5)
        assert testbed.now == pytest.approx(1.5)

    def test_soap_and_corba_servers_get_distinct_endpoints(self):
        testbed = LiveDevelopmentTestbed()
        testbed.create_soap_server("Alpha", [])
        testbed.create_corba_server("Beta", [])
        alpha = testbed.sde.managed_server("Alpha").call_handler.endpoint_url
        beta = testbed.sde.managed_server("Beta").call_handler.endpoint_url
        assert alpha.startswith("http://server:")
        assert beta.startswith("iiop://server:")

    def test_publish_now_skips_the_stability_wait(self):
        testbed = LiveDevelopmentTestbed(sde_config=SDEConfig(publication_timeout=60.0))
        testbed.create_soap_server(
            "Slow", [OperationSpec("ping", (), INT, body=lambda self: 1)]
        )
        testbed.publish_now("Slow")
        publisher = testbed.sde.managed_server("Slow").publisher
        assert publisher.is_published_current()
        assert testbed.now < 60.0

    def test_operation_spec_parameter_objects(self):
        spec = OperationSpec("greet", (("name", STRING),), STRING)
        parameters = spec.parameter_objects()
        assert parameters[0].name == "name"
        assert parameters[0].param_type == STRING

    def test_custom_sde_config_respected(self):
        config = SDEConfig(publication_timeout=0.5, generation_cost=0.01)
        testbed = LiveDevelopmentTestbed(sde_config=config)
        assert testbed.sde.config.publication_timeout == 0.5
        testbed.create_soap_server(
            "Quick", [OperationSpec("ping", (), INT, body=lambda self: 1)]
        )
        testbed.run_for(0.6)
        assert testbed.sde.managed_server("Quick").publisher.is_published_current()

    def test_settle_publishes_pending_changes(self):
        testbed = LiveDevelopmentTestbed(
            sde_config=SDEConfig(publication_timeout=2.0, generation_cost=0.1)
        )
        service, _instance = testbed.create_soap_server("Svc", [])
        service.add_method("op", (), INT, body=lambda self: 0, distributed=True)
        assert not testbed.sde.managed_server("Svc").publisher.is_published_current()
        testbed.settle()
        assert testbed.sde.managed_server("Svc").publisher.is_published_current()
