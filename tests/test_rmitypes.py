"""Tests for the shared RMI type model."""

import pytest

from repro.rmitypes import (
    ArrayType,
    BOOLEAN,
    CHAR,
    DOUBLE,
    FieldDef,
    FLOAT,
    INT,
    PRIMITIVES,
    PrimitiveType,
    STRING,
    StructType,
    TypeError_,
    TypeRegistry,
    VOID,
    infer_type,
    parse_type,
    python_default,
)


ADDRESS = StructType("Address", (FieldDef("street", STRING), FieldDef("number", INT)))


class TestPrimitiveValidation:
    def test_int_accepts_int(self):
        INT.validate(42)

    def test_int_rejects_bool_and_float(self):
        with pytest.raises(TypeError_):
            INT.validate(True)
        with pytest.raises(TypeError_):
            INT.validate(1.5)

    def test_double_accepts_int_and_float(self):
        DOUBLE.validate(1)
        DOUBLE.validate(1.5)
        FLOAT.validate(2.5)

    def test_double_rejects_bool_and_string(self):
        with pytest.raises(TypeError_):
            DOUBLE.validate(True)
        with pytest.raises(TypeError_):
            DOUBLE.validate("1.5")

    def test_boolean(self):
        BOOLEAN.validate(True)
        with pytest.raises(TypeError_):
            BOOLEAN.validate(1)

    def test_string(self):
        STRING.validate("hello")
        with pytest.raises(TypeError_):
            STRING.validate(5)

    def test_char_requires_single_character(self):
        CHAR.validate("x")
        with pytest.raises(TypeError_):
            CHAR.validate("xy")
        with pytest.raises(TypeError_):
            CHAR.validate("")

    def test_void_only_accepts_none(self):
        VOID.validate(None)
        with pytest.raises(TypeError_):
            VOID.validate(0)

    def test_unknown_primitive_rejected(self):
        with pytest.raises(TypeError_):
            PrimitiveType("short")

    def test_primitive_names(self):
        assert set(PRIMITIVES) == {"int", "double", "float", "boolean", "string", "char", "void"}


class TestArrayType:
    def test_validates_elements(self):
        ArrayType(INT).validate([1, 2, 3])
        with pytest.raises(TypeError_):
            ArrayType(INT).validate([1, "two"])

    def test_rejects_non_sequence(self):
        with pytest.raises(TypeError_):
            ArrayType(INT).validate(5)

    def test_nested_arrays(self):
        nested = ArrayType(ArrayType(STRING))
        nested.validate([["a"], ["b", "c"]])
        assert nested.type_name == "string[][]"

    def test_empty_sequence_valid(self):
        ArrayType(INT).validate([])


class TestStructType:
    def test_validates_fields(self):
        ADDRESS.validate({"street": "Main", "number": 5})

    def test_missing_field_rejected(self):
        with pytest.raises(TypeError_):
            ADDRESS.validate({"street": "Main"})

    def test_extra_field_rejected(self):
        with pytest.raises(TypeError_):
            ADDRESS.validate({"street": "Main", "number": 5, "zip": "63130"})

    def test_field_type_checked(self):
        with pytest.raises(TypeError_):
            ADDRESS.validate({"street": "Main", "number": "five"})

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError_):
            ADDRESS.validate(["Main", 5])

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(TypeError_):
            StructType("Bad", (FieldDef("x", INT), FieldDef("x", INT)))

    def test_field_names_order_preserved(self):
        assert ADDRESS.field_names() == ("street", "number")

    def test_nested_struct(self):
        person = StructType("Person", (FieldDef("name", STRING), FieldDef("home", ADDRESS)))
        person.validate({"name": "a", "home": {"street": "Main", "number": 1}})


class TestTypeRegistry:
    def test_register_and_get(self):
        registry = TypeRegistry()
        registry.register(ADDRESS)
        assert registry.get("Address") is ADDRESS
        assert "Address" in registry

    def test_identical_reregistration_allowed(self):
        registry = TypeRegistry((ADDRESS,))
        registry.register(StructType("Address", (FieldDef("street", STRING), FieldDef("number", INT))))

    def test_conflicting_redefinition_rejected(self):
        registry = TypeRegistry((ADDRESS,))
        with pytest.raises(TypeError_):
            registry.register(StructType("Address", (FieldDef("street", STRING),)))

    def test_unknown_lookup_rejected(self):
        with pytest.raises(TypeError_):
            TypeRegistry().get("Nope")

    def test_structs_sorted_by_name(self):
        b = StructType("Beta")
        a = StructType("Alpha")
        registry = TypeRegistry((b, a))
        assert [s.name for s in registry.structs] == ["Alpha", "Beta"]

    def test_copy_is_independent(self):
        registry = TypeRegistry((ADDRESS,))
        copy = registry.copy()
        copy.register(StructType("Other"))
        assert "Other" not in registry


class TestParseType:
    @pytest.mark.parametrize("name,expected", [
        ("int", INT), ("double", DOUBLE), ("string", STRING), ("void", VOID),
    ])
    def test_primitives(self, name, expected):
        assert parse_type(name) == expected

    def test_array_suffix(self):
        assert parse_type("int[]") == ArrayType(INT)
        assert parse_type("string[][]") == ArrayType(ArrayType(STRING))

    def test_struct_lookup(self):
        assert parse_type("Address", TypeRegistry((ADDRESS,))) == ADDRESS

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError_):
            parse_type("Mystery")


class TestDefaultsAndInference:
    def test_python_defaults(self):
        assert python_default(INT) == 0
        assert python_default(STRING) == ""
        assert python_default(BOOLEAN) is False
        assert python_default(ArrayType(INT)) == []
        assert python_default(ADDRESS) == {"street": "", "number": 0}

    def test_infer_primitives(self):
        assert infer_type(5) == INT
        assert infer_type(1.5) == DOUBLE
        assert infer_type(True) == BOOLEAN
        assert infer_type("x") == STRING
        assert infer_type(None) == VOID

    def test_infer_sequences(self):
        assert infer_type([1, 2]) == ArrayType(INT)
        assert infer_type([]) == ArrayType(STRING)

    def test_infer_struct_with_registry(self):
        registry = TypeRegistry((ADDRESS,))
        assert infer_type({"street": "Main", "number": 3}, registry) == ADDRESS

    def test_infer_unknown_dict_rejected(self):
        with pytest.raises(TypeError_):
            infer_type({"mystery": 1})
