"""Tests for the JPie environment, undo/redo stack, debugger and export."""

import pytest

from repro.errors import ExportError, JPieError
from repro.interface import Parameter
from repro.jpie import (
    JPieEnvironment,
    export_operation_table,
    export_static_class,
)
from repro.rmitypes import INT, STRING


@pytest.fixture
def environment():
    return JPieEnvironment()


def make_counter_class(environment, name="Counter"):
    cls = environment.create_class(name)
    cls.add_field("count", INT, 0)
    cls.add_method(
        "increment",
        (Parameter("by", INT),),
        INT,
        body=lambda self, by: self.set_field("count", self.get_field("count") + by) or self.get_field("count"),
        distributed=True,
    )
    return cls


class TestEnvironment:
    def test_class_load_events(self, environment):
        loaded = []
        environment.add_class_load_listener(lambda event: loaded.append(event.class_name))
        environment.create_class("Alpha")
        environment.create_class("Beta")
        assert loaded == ["Alpha", "Beta"]

    def test_duplicate_class_name_rejected(self, environment):
        environment.create_class("Alpha")
        with pytest.raises(JPieError):
            environment.create_class("Alpha")

    def test_get_and_unload(self, environment):
        created = environment.create_class("Alpha")
        assert environment.get_class("Alpha") is created
        environment.unload_class("Alpha")
        with pytest.raises(JPieError):
            environment.get_class("Alpha")

    def test_instance_listeners(self, environment):
        created = []
        environment.add_instance_listener(lambda cls, instance: created.append((cls.name, instance)))
        counter = make_counter_class(environment)
        instance = counter.new_instance()
        assert created == [("Counter", instance)]


class TestUndoRedoStack:
    def test_changes_recorded(self, environment):
        counter = make_counter_class(environment)
        assert environment.undo_stack.depth == 2  # field + method
        assert [r.class_name for r in environment.undo_stack.records] == ["Counter", "Counter"]

    def test_stack_listeners_see_pushes(self, environment):
        seen = []
        environment.undo_stack.add_listener(lambda record: seen.append(record.event.kind.value))
        make_counter_class(environment)
        assert seen == ["field-added", "method-added"]

    def test_records_for_filters_by_class(self, environment):
        make_counter_class(environment, "A")
        make_counter_class(environment, "B")
        assert all(r.class_name == "A" for r in environment.undo_stack.records_for("A"))
        assert len(environment.undo_stack.records_for("A")) == 2

    def test_undo_reverts_method_addition(self, environment):
        counter = make_counter_class(environment)
        counter.add_method("noop", (), INT, body=lambda self: 0)
        assert counter.has_method("noop")
        environment.undo_stack.undo()
        assert not counter.has_method("noop")

    def test_undo_reverts_method_removal(self, environment):
        counter = make_counter_class(environment)
        counter.remove_method("increment")
        assert not counter.has_method("increment")
        environment.undo_stack.undo()
        assert counter.has_method("increment")

    def test_undo_with_nothing_to_undo(self):
        environment = JPieEnvironment()
        with pytest.raises(JPieError):
            environment.undo_stack.undo()

    def test_undo_produces_new_change_event(self, environment):
        """Undo looks like another edit — publishers must see it (§5.6)."""
        counter = make_counter_class(environment)
        counter.add_method("noop", (), INT, body=lambda self: 0)
        seen = []
        environment.undo_stack.add_listener(lambda record: seen.append(record.event.kind.value))
        environment.undo_stack.undo()
        assert seen == ["method-removed"]

    def test_clear(self, environment):
        make_counter_class(environment)
        environment.undo_stack.clear()
        assert environment.undo_stack.depth == 0
        assert environment.undo_stack.last() is None


class TestDebugger:
    def test_report_and_inspect(self, environment):
        entry = environment.debugger.report("client", ValueError("bad input"), "call failed")
        assert environment.debugger.latest() is entry
        assert entry in environment.debugger.unresolved
        assert "ValueError" in str(entry)

    def test_display_listeners(self, environment):
        displayed = []
        environment.debugger.add_display_listener(displayed.append)
        environment.debugger.report("client", RuntimeError("x"))
        assert len(displayed) == 1

    def test_try_again_reexecutes_and_resolves(self, environment):
        attempts = []
        entry = environment.debugger.report(
            "client", RuntimeError("first failure"), retry=lambda: attempts.append(1) or "ok"
        )
        assert environment.debugger.try_again(entry) == "ok"
        assert entry.resolved
        assert environment.debugger.unresolved == ()

    def test_try_again_without_retry(self, environment):
        environment.debugger.report("client", RuntimeError("x"))
        with pytest.raises(JPieError):
            environment.debugger.try_again()

    def test_try_again_with_no_entries(self, environment):
        with pytest.raises(JPieError):
            environment.debugger.try_again()

    def test_resolve_and_clear(self, environment):
        entry = environment.debugger.report("client", RuntimeError("x"))
        environment.debugger.resolve(entry)
        assert environment.debugger.unresolved == ()
        environment.debugger.clear()
        assert environment.debugger.entries == ()


class TestExport:
    def test_export_static_class_freezes_behaviour(self, environment):
        counter = make_counter_class(environment)
        counter.add_method("describe", (), STRING, body=lambda self: "counter")
        Exported = export_static_class(counter)
        instance = Exported()
        assert instance.describe() == "counter"
        assert instance.count == 0
        # Later dynamic changes do not affect the exported class.
        counter.method("describe").set_body(lambda self: "changed")
        assert instance.describe() == "counter"

    def test_export_empty_class_rejected(self, environment):
        empty = environment.create_class("Empty")
        with pytest.raises(ExportError):
            export_static_class(empty)

    def test_export_operation_table(self, environment):
        counter = make_counter_class(environment)
        instance = counter.new_instance()
        table = export_operation_table(counter, instance)
        signatures = [signature.name for signature, _ in table]
        assert signatures == ["increment"]
        _signature, implementation = table[0]
        assert implementation(5) == 5
        assert implementation(3) == 8  # state carried by the chosen instance

    def test_export_operation_table_requires_distributed_methods(self, environment):
        plain = environment.create_class("Plain")
        plain.add_method("helper", (), INT, body=lambda self: 1)
        with pytest.raises(ExportError):
            export_operation_table(plain)

    def test_exported_table_is_frozen_against_later_changes(self, environment):
        counter = make_counter_class(environment)
        instance = counter.new_instance()
        table = export_operation_table(counter, instance)
        counter.method("increment").set_body(lambda self, by: -1)
        _signature, implementation = table[0]
        assert implementation(2) == 2  # still the old behaviour
