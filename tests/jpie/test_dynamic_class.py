"""Tests for dynamic classes, methods and fields (the JPie substrate)."""

import pytest

from repro.errors import (
    DynamicClassError,
    MemberNotFoundError,
    SignatureError,
)
from repro.interface import Parameter
from repro.jpie import DynamicClass, JPieEnvironment, Modifier
from repro.jpie.listeners import ClassChangeKind
from repro.rmitypes import DOUBLE, INT, STRING, StructType, FieldDef


@pytest.fixture
def environment():
    return JPieEnvironment()


@pytest.fixture
def calculator(environment):
    cls = environment.create_class("Calculator")
    cls.add_method(
        "add",
        (Parameter("a", INT), Parameter("b", INT)),
        INT,
        body=lambda self, a, b: a + b,
        distributed=True,
    )
    cls.add_field("total", INT, 0)
    return cls


class TestClassStructure:
    def test_method_and_field_lookup(self, calculator):
        assert calculator.has_method("add")
        assert calculator.has_field("total")
        assert not calculator.has_method("sub")
        with pytest.raises(MemberNotFoundError):
            calculator.method("sub")
        with pytest.raises(MemberNotFoundError):
            calculator.field("missing")

    def test_duplicate_member_names_rejected(self, calculator):
        with pytest.raises(DynamicClassError):
            calculator.add_method("add")
        with pytest.raises(DynamicClassError):
            calculator.add_field("total", INT)

    def test_invalid_class_name_rejected(self):
        with pytest.raises(ValueError):
            DynamicClass("not a name")

    def test_subclass_relationship(self, environment):
        base = environment.create_class("Base")
        derived = environment.create_class("Derived", superclass=base)
        assert derived.is_subclass_of(base)
        assert not base.is_subclass_of(derived)
        assert derived.is_subclass_of(derived)

    def test_inherited_method_lookup(self, environment):
        base = environment.create_class("Base")
        base.add_method("ping", (), STRING, body=lambda self: "pong")
        derived = environment.create_class("Derived", superclass=base)
        instance = derived.new_instance()
        assert instance.invoke("ping") == "pong"

    def test_declare_struct_types(self, calculator):
        point = StructType("Point", (FieldDef("x", DOUBLE), FieldDef("y", DOUBLE)))
        calculator.declare_struct(point)
        assert calculator.struct_types == (point,)


class TestLiveInstanceBehaviour:
    def test_instances_see_current_body(self, calculator):
        instance = calculator.new_instance()
        assert instance.invoke("add", 2, 3) == 5
        calculator.method("add").set_body(lambda self, a, b: (a + b) * 10)
        assert instance.invoke("add", 2, 3) == 50

    def test_instances_see_signature_changes(self, calculator):
        instance = calculator.new_instance()
        method = calculator.method("add")
        method.set_parameters((Parameter("a", INT), Parameter("b", INT), Parameter("c", INT)))
        method.set_body(lambda self, a, b, c: a + b + c)
        assert instance.invoke("add", 1, 2, 3) == 6
        with pytest.raises(SignatureError):
            instance.invoke("add", 1, 2)

    def test_argument_types_validated_against_current_signature(self, calculator):
        instance = calculator.new_instance()
        with pytest.raises(SignatureError):
            instance.invoke("add", "two", 3)

    def test_new_methods_available_to_existing_instances(self, calculator):
        instance = calculator.new_instance()
        calculator.add_method("square", (Parameter("x", INT),), INT, body=lambda self, x: x * x)
        assert instance.invoke("square", 4) == 16

    def test_removed_methods_unavailable(self, calculator):
        instance = calculator.new_instance()
        calculator.remove_method("add")
        with pytest.raises(MemberNotFoundError):
            instance.invoke("add", 1, 2)

    def test_field_access_and_type_checking(self, calculator):
        instance = calculator.new_instance()
        assert instance.get_field("total") == 0
        instance.set_field("total", 7)
        assert instance.get_field("total") == 7
        with pytest.raises(Exception):
            instance.set_field("total", "seven")

    def test_fields_added_and_removed_on_live_instances(self, calculator):
        instance = calculator.new_instance()
        calculator.add_field("name", STRING, "calc")
        assert instance.get_field("name") == "calc"
        calculator.remove_field("name")
        with pytest.raises(MemberNotFoundError):
            instance.get_field("name")

    def test_attribute_style_access(self, calculator):
        instance = calculator.new_instance()
        assert instance.add(1, 2) == 3
        assert instance.total == 0
        with pytest.raises(AttributeError):
            instance.nonexistent

    def test_method_rename_keeps_working_through_handle(self, calculator):
        instance = calculator.new_instance()
        method = calculator.method("add")
        method.rename("sum")
        assert calculator.has_method("sum")
        assert not calculator.has_method("add")
        assert instance.invoke("sum", 2, 2) == 4

    def test_rename_collision_rejected(self, calculator):
        calculator.add_method("sum", (), INT, body=lambda self: 0)
        with pytest.raises(DynamicClassError):
            calculator.method("add").rename("sum")

    def test_field_rename_preserves_values(self, calculator):
        instance = calculator.new_instance()
        instance.set_field("total", 42)
        calculator.field("total").rename("grand_total")
        assert instance.get_field("grand_total") == 42


class TestDistributedInterface:
    def test_distributed_methods_selected_by_modifier(self, calculator):
        calculator.add_method("local_helper", (), INT, body=lambda self: 1)
        assert [m.name for m in calculator.distributed_methods()] == ["add"]

    def test_toggle_distributed_modifier(self, calculator):
        method = calculator.method("add")
        method.set_distributed(False)
        assert calculator.distributed_signatures() == ()
        method.set_distributed(True)
        assert [s.name for s in calculator.distributed_signatures()] == ["add"]

    def test_distributed_signatures_sorted_by_name(self, calculator):
        calculator.add_method("zeta", (), INT, body=lambda self: 0, distributed=True)
        calculator.add_method("alpha", (), INT, body=lambda self: 0, distributed=True)
        assert [s.name for s in calculator.distributed_signatures()] == ["add", "alpha", "zeta"]

    def test_modifier_membership(self, calculator):
        method = calculator.method("add")
        assert method.is_distributed
        assert Modifier.DISTRIBUTED in method.modifiers


class TestChangeEvents:
    def test_events_fired_for_mutations(self, calculator):
        events = []
        calculator.add_listener(lambda event: events.append(event.kind))
        calculator.add_method("noop", (), INT, body=lambda self: 0)
        calculator.method("noop").set_body(lambda self: 1)
        calculator.method("noop").set_return_type(STRING)
        calculator.method("noop").add_modifier(Modifier.DISTRIBUTED)
        calculator.method("noop").rename("renamed")
        calculator.remove_method("renamed")
        assert events == [
            ClassChangeKind.METHOD_ADDED,
            ClassChangeKind.METHOD_BODY_CHANGED,
            ClassChangeKind.METHOD_SIGNATURE_CHANGED,
            ClassChangeKind.METHOD_MODIFIERS_CHANGED,
            ClassChangeKind.METHOD_RENAMED,
            ClassChangeKind.METHOD_REMOVED,
        ]

    def test_interface_affecting_classification(self, calculator):
        events = []
        calculator.add_listener(events.append)
        calculator.method("add").set_body(lambda self, a, b: a - b)
        calculator.method("add").set_return_type(DOUBLE)
        body_event, signature_event = events
        assert not body_event.affects_interface
        assert signature_event.affects_interface

    def test_idempotent_modifier_changes_fire_no_event(self, calculator):
        events = []
        calculator.add_listener(events.append)
        calculator.method("add").add_modifier(Modifier.DISTRIBUTED)  # already set
        calculator.method("add").remove_modifier(Modifier.STATIC)  # never set
        assert events == []
