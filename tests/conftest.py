"""Shared pytest fixtures for the reproduction's test suite."""

from __future__ import annotations

import pytest

from repro.core.sde import SDEConfig
from repro.net import Network, loopback_profile, t1_lan_profile
from repro.net.latency import era_2004_cost_model
from repro.rmitypes import INT, STRING
from repro.sim import Scheduler
from repro.testbed import LiveDevelopmentTestbed, OperationSpec
from repro.util.ids import reset_global_ids


@pytest.fixture(autouse=True)
def _reset_ids():
    """Keep generated identifiers deterministic within each test."""
    reset_global_ids()
    yield
    reset_global_ids()


@pytest.fixture
def scheduler() -> Scheduler:
    """A fresh discrete-event scheduler."""
    return Scheduler()


@pytest.fixture
def network(scheduler: Scheduler) -> Network:
    """A loopback-latency network with ``server`` and ``client`` hosts."""
    net = Network(scheduler, loopback_profile())
    net.add_host("server")
    net.add_host("client")
    return net


@pytest.fixture
def lan_network(scheduler: Scheduler) -> Network:
    """A T1-LAN-latency network with ``server`` and ``client`` hosts."""
    net = Network(scheduler, t1_lan_profile())
    net.add_host("server")
    net.add_host("client")
    return net


@pytest.fixture
def testbed() -> LiveDevelopmentTestbed:
    """A complete live-development world with fast publication settings."""
    return LiveDevelopmentTestbed(
        sde_config=SDEConfig(publication_timeout=1.0, generation_cost=0.05)
    )


@pytest.fixture
def calculator_testbed(testbed: LiveDevelopmentTestbed):
    """A testbed with a published SOAP Calculator and a connected client."""
    calculator, instance = testbed.create_soap_server(
        "Calculator",
        [
            OperationSpec("add", (("a", INT), ("b", INT)), INT, body=lambda self, a, b: a + b),
            OperationSpec("greet", (("name", STRING),), STRING, body=lambda self, name: f"hello {name}"),
        ],
    )
    testbed.publish_now("Calculator")
    binding = testbed.connect_soap_client("Calculator")
    return testbed, calculator, instance, binding


def make_echo_operation():
    """A reusable echo operation spec."""
    return OperationSpec("echo", (("message", STRING),), STRING, body=lambda self, m: m)
