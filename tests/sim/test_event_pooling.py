"""Units for the scheduler's event arena (``schedule_pooled``) and the
purge-on-``pending_count`` fix.

The arena recycles Event objects through a free list with generation
counters.  The invariants:

* only cleanly dispatched pooled events are recycled — cancelled events are
  never pooled, so a stale holder's defensive double-``cancel()`` (a
  documented safe no-op) cannot hit a new incarnation;
* every reuse bumps ``generation``, and ``is_generation`` lets holders
  detect that their snapshot went stale;
* the free list is bounded by ``_EVENT_POOL_LIMIT``;
* reading ``pending_count`` on a cancel-heavy idle heap triggers the lazy
  purge that previously only ran on later cancels.
"""

from __future__ import annotations

import pytest

from repro.sim.scheduler import _EVENT_POOL_LIMIT, _PURGE_MIN_QUEUE, Scheduler


class TestEventPooling:
    def test_dispatched_pooled_event_is_recycled(self):
        scheduler = Scheduler()
        first = scheduler.schedule_pooled(0.01, lambda: None)
        generation = first.generation
        scheduler.run_until_idle()
        second = scheduler.schedule_pooled(0.01, lambda: None)
        assert second is first
        assert second.generation == generation + 1
        assert not first.is_generation(generation)

    def test_recycled_event_state_is_reset(self):
        scheduler = Scheduler()
        ran = []
        first = scheduler.schedule_pooled(0.01, lambda: ran.append("a"), label="a")
        scheduler.run_until_idle()
        second = scheduler.schedule_pooled(0.02, lambda: ran.append("b"), label="b")
        assert second is first
        assert second.pending
        assert not second.dispatched and not second.cancelled
        assert second.label == "b"
        scheduler.run_until_idle()
        assert ran == ["a", "b"]

    def test_cancelled_pooled_event_is_not_recycled(self):
        scheduler = Scheduler()
        first = scheduler.schedule_pooled(0.01, lambda: None)
        first.cancel()
        scheduler.run_until_idle()
        second = scheduler.schedule_pooled(0.01, lambda: None)
        assert second is not first

    def test_stale_holder_cancel_is_harmless_no_op(self):
        """A holder that kept a reference past dispatch may still call
        ``cancel()`` defensively; because dispatch recycles only *clean*
        events and cancel on a dispatched event is a no-op, the new
        incarnation is unaffected until the object is actually reused —
        at which point generation snapshots are the holder's guard."""
        scheduler = Scheduler()
        ran = []
        first = scheduler.schedule_pooled(0.01, lambda: ran.append(1))
        snapshot = first.generation
        scheduler.run_until_idle()
        # The same object now serves a new incarnation.
        second = scheduler.schedule_pooled(0.01, lambda: ran.append(2))
        assert second is first
        # The stale holder can detect staleness instead of cancelling.
        assert not (first.pending and first.is_generation(snapshot))
        scheduler.run_until_idle()
        assert ran == [1, 2]

    def test_plain_schedule_events_are_never_pooled(self):
        scheduler = Scheduler()
        plain = scheduler.schedule(0.01, lambda: None)
        assert not plain.recyclable
        scheduler.run_until_idle()
        pooled = scheduler.schedule_pooled(0.01, lambda: None)
        assert pooled is not plain

    def test_free_list_is_bounded(self):
        scheduler = Scheduler()
        for _ in range(_EVENT_POOL_LIMIT + 100):
            scheduler.schedule_pooled(0.0, lambda: None)
        scheduler.run_until_idle()
        assert len(scheduler._free) <= _EVENT_POOL_LIMIT

    def test_negative_delay_rejected(self):
        scheduler = Scheduler()
        with pytest.raises(Exception):
            scheduler.schedule_pooled(-0.5, lambda: None)


class TestPurgeOnPendingCount:
    def test_pending_count_read_purges_cancelled_entries(self):
        """A cancel-heavy heap left idle must shed its dead entries when
        ``pending_count`` is read, not only on the next cancel.

        The sweep trigger compares cancelled entries against queue length, so
        the scenario that previously leaked is: cancels that stay *below* the
        ratio while the queue is full, followed by dispatches that shrink the
        queue until the dead entries dominate — with no further cancel ever
        arriving to re-evaluate the ratio."""
        scheduler = Scheduler()
        dead = 2 * _PURGE_MIN_QUEUE
        # Far-future events, most of which get cancelled...
        far = [
            scheduler.schedule(100.0 + index * 1e-4, lambda: None)
            for index in range(dead + 8)
        ]
        # ... plus enough near-term live events that the cancels stay below
        # the purge ratio while they happen.
        for index in range(2 * dead):
            scheduler.schedule(index * 1e-4 + 1e-6, lambda: None)
        # Keep the *earliest* far-future entries live: the run loop pops
        # cancelled entries it finds at the heap front, so dead entries only
        # linger when a live event shields them.
        for event in far[8:]:
            event.cancel()
        queue_before = len(scheduler._queue)
        assert queue_before == 3 * dead + 8  # no purge ran during the cancels

        # Dispatch the near-term events; the heap is now mostly dead entries.
        scheduler.run_for(1.0)
        assert len(scheduler._queue) == dead + 8

        # A pure read triggers the sweep.
        assert scheduler.pending_count == 8
        assert len(scheduler._queue) == 8

    def test_pending_count_stays_correct_through_purges(self):
        scheduler = Scheduler()
        events = [
            scheduler.schedule((index % 13) * 1e-3 + 0.1, lambda: None)
            for index in range(500)
        ]
        for index, event in enumerate(events):
            if index % 3:
                event.cancel()
                assert scheduler.pending_count == sum(1 for e in events if e.pending)
        scheduler.run_until_idle()
        assert scheduler.pending_count == 0
