"""Tests for the resettable and periodic timers (the §5.6 mechanism)."""

import pytest

from repro.errors import SchedulerError
from repro.sim import PeriodicTimer, ResettableTimer, Scheduler


class TestResettableTimer:
    def test_fires_after_timeout(self, scheduler: Scheduler):
        fired = []
        timer = ResettableTimer(scheduler, 2.0, lambda: fired.append(scheduler.now))
        timer.start()
        scheduler.run_until_idle()
        assert fired == [2.0]

    def test_not_started_until_start_called(self, scheduler: Scheduler):
        fired = []
        ResettableTimer(scheduler, 1.0, lambda: fired.append(True))
        scheduler.run_until_idle()
        assert fired == []

    def test_reset_extends_deadline(self, scheduler: Scheduler):
        """A change before expiry restarts the countdown — the heart of §5.6."""
        fired = []
        timer = ResettableTimer(scheduler, 2.0, lambda: fired.append(scheduler.now))
        timer.start()
        scheduler.run_for(1.5)
        timer.reset()
        scheduler.run_until_idle()
        assert fired == [3.5]
        assert timer.resets == 1

    def test_multiple_resets_only_fire_once(self, scheduler: Scheduler):
        fired = []
        timer = ResettableTimer(scheduler, 1.0, lambda: fired.append(scheduler.now))
        timer.start()
        for _ in range(5):
            scheduler.run_for(0.5)
            timer.reset()
        scheduler.run_until_idle()
        assert len(fired) == 1
        assert fired[0] == pytest.approx(3.5)

    def test_cancel_prevents_firing(self, scheduler: Scheduler):
        fired = []
        timer = ResettableTimer(scheduler, 1.0, lambda: fired.append(True))
        timer.start()
        timer.cancel()
        scheduler.run_until_idle()
        assert fired == []
        assert not timer.running

    def test_force_expire_fires_immediately(self, scheduler: Scheduler):
        fired = []
        timer = ResettableTimer(scheduler, 100.0, lambda: fired.append(scheduler.now))
        timer.start()
        timer.force_expire()
        assert fired == [0.0]
        assert not timer.running

    def test_force_expire_without_running_countdown(self, scheduler: Scheduler):
        fired = []
        timer = ResettableTimer(scheduler, 1.0, lambda: fired.append(True))
        timer.force_expire()
        assert fired == [True]

    def test_running_and_deadline(self, scheduler: Scheduler):
        timer = ResettableTimer(scheduler, 2.0, lambda: None)
        assert not timer.running
        assert timer.deadline is None
        timer.start()
        assert timer.running
        assert timer.deadline == 2.0

    def test_timeout_change_applies_to_next_countdown(self, scheduler: Scheduler):
        fired = []
        timer = ResettableTimer(scheduler, 2.0, lambda: fired.append(scheduler.now))
        timer.start()
        timer.timeout = 5.0
        # current countdown keeps its original deadline
        scheduler.run_until_idle()
        assert fired == [2.0]
        timer.start()
        scheduler.run_until_idle()
        assert fired == [2.0, 7.0]

    def test_invalid_timeout_rejected(self, scheduler: Scheduler):
        with pytest.raises(ValueError):
            ResettableTimer(scheduler, 0.0, lambda: None)
        timer = ResettableTimer(scheduler, 1.0, lambda: None)
        with pytest.raises(ValueError):
            timer.timeout = -1.0

    def test_expiration_counter(self, scheduler: Scheduler):
        timer = ResettableTimer(scheduler, 1.0, lambda: None)
        timer.start()
        scheduler.run_until_idle()
        timer.start()
        scheduler.run_until_idle()
        assert timer.expirations == 2


class TestPeriodicTimer:
    def test_ticks_at_each_interval(self, scheduler: Scheduler):
        ticks = []
        timer = PeriodicTimer(scheduler, 1.0, lambda: ticks.append(scheduler.now))
        timer.start()
        scheduler.run_for(3.5)
        timer.stop()
        assert ticks == [1.0, 2.0, 3.0]

    def test_stop_prevents_future_ticks(self, scheduler: Scheduler):
        ticks = []
        timer = PeriodicTimer(scheduler, 1.0, lambda: ticks.append(scheduler.now))
        timer.start()
        scheduler.run_for(1.5)
        timer.stop()
        scheduler.run_for(5.0)
        assert ticks == [1.0]

    def test_double_start_rejected(self, scheduler: Scheduler):
        timer = PeriodicTimer(scheduler, 1.0, lambda: None)
        timer.start()
        with pytest.raises(SchedulerError):
            timer.start()

    def test_tick_counter(self, scheduler: Scheduler):
        timer = PeriodicTimer(scheduler, 0.5, lambda: None)
        timer.start()
        scheduler.run_for(2.1)
        timer.stop()
        assert timer.ticks == 4

    def test_callback_stopping_timer_mid_tick(self, scheduler: Scheduler):
        timer = PeriodicTimer(scheduler, 1.0, lambda: timer.stop())
        timer.start()
        scheduler.run_for(5.0)
        assert timer.ticks == 1
