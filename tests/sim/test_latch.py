"""Tests for the completion latch used to express blocking operations."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import CompletionLatch, Scheduler


class TestCompletionLatch:
    def test_wait_returns_completed_value(self, scheduler: Scheduler):
        latch = CompletionLatch(scheduler, "test op")
        scheduler.schedule(1.0, lambda: latch.complete(42))
        assert latch.wait() == 42
        assert scheduler.now == 1.0

    def test_wait_raises_failure(self, scheduler: Scheduler):
        latch = CompletionLatch(scheduler, "test op")
        scheduler.schedule(1.0, lambda: latch.fail(RuntimeError("broken")))
        with pytest.raises(RuntimeError, match="broken"):
            latch.wait()

    def test_wait_deadlocks_when_nothing_completes_it(self, scheduler: Scheduler):
        latch = CompletionLatch(scheduler, "orphan")
        with pytest.raises(DeadlockError):
            latch.wait()

    def test_double_completion_rejected(self, scheduler: Scheduler):
        latch = CompletionLatch(scheduler)
        latch.complete(1)
        with pytest.raises(SimulationError):
            latch.complete(2)
        with pytest.raises(SimulationError):
            latch.fail(RuntimeError())

    def test_peek_before_completion_raises(self, scheduler: Scheduler):
        latch = CompletionLatch(scheduler)
        with pytest.raises(SimulationError):
            latch.peek()

    def test_peek_after_completion(self, scheduler: Scheduler):
        latch = CompletionLatch(scheduler)
        latch.complete("done")
        assert latch.peek() == "done"

    def test_completed_flag(self, scheduler: Scheduler):
        latch = CompletionLatch(scheduler)
        assert not latch.completed
        latch.complete(None)
        assert latch.completed

    def test_nested_latches(self, scheduler: Scheduler):
        """A blocking operation may itself perform a blocking operation."""
        outer = CompletionLatch(scheduler, "outer")
        inner = CompletionLatch(scheduler, "inner")

        def start_inner():
            scheduler.schedule(1.0, lambda: inner.complete("inner-done"))
            result = inner.wait()
            outer.complete(f"outer saw {result}")

        scheduler.schedule(1.0, start_inner)
        assert outer.wait() == "outer saw inner-done"
        assert scheduler.now == 2.0
