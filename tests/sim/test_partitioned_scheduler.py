"""Partitioned event streams: merged dispatch must equal the single queue.

:meth:`Scheduler.partition` gives each key its own heap, but the merge
contract is strict: because every stream draws insertion tickets from the
scheduler's *global* sequence counter, dispatching by minimal
``(time, seq)`` across all heaps reproduces exactly the order one shared
queue would have produced.  These tests pin that equivalence under
arbitrary interleavings, cancellation churn, ``run_until_time`` horizons
and the lazy purge — plus the fingerprint determinism the cohort layer
relies on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulerError
from repro.sim import EventStream, Scheduler

#: One op: (delay bucket, stream key index: 0 = main queue, 1..3 = streams,
#: cancel-the-op-this-many-back or None).
_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=3),
        st.one_of(st.none(), st.integers(min_value=1, max_value=6)),
    ),
    min_size=1,
    max_size=120,
)


def _run_workload(ops, *, partitioned: bool) -> list[int]:
    """Schedule ``ops`` (optionally spread over streams) and dispatch all."""
    scheduler = Scheduler()
    dispatched: list[int] = []
    streams = {}
    events = []
    for index, (bucket, key, cancel_back) in enumerate(ops):
        delay = bucket * 0.125
        callback = lambda i=index: dispatched.append(i)
        if partitioned and key > 0:
            stream = streams.get(key)
            if stream is None:
                stream = scheduler.partition(f"stream-{key}")
                streams[key] = stream
            event = stream.schedule(delay, callback)
        else:
            event = scheduler.schedule(delay, callback)
        events.append(event)
        if cancel_back is not None and cancel_back <= len(events):
            events[-cancel_back].cancel()
    scheduler.run_until_idle()
    return dispatched


class TestMergedDispatchOrder:
    @given(ops=_ops)
    @settings(max_examples=120, deadline=None)
    def test_partitioned_dispatch_equals_single_queue(self, ops):
        """The same workload spread over streams dispatches in exactly the
        single-queue order, whatever the interleaving and cancellations."""
        assert _run_workload(ops, partitioned=True) == _run_workload(
            ops, partitioned=False
        )

    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_partitioned_dispatch_is_deterministic(self, ops):
        """Two fresh runs of one partitioned workload produce identical
        dispatch sequences — the cohort layer's determinism fingerprint."""
        assert _run_workload(ops, partitioned=True) == _run_workload(
            ops, partitioned=True
        )


class TestEventStreamSemantics:
    def test_same_time_events_interleave_by_insertion_order(self):
        scheduler = Scheduler()
        order = []
        p1 = scheduler.partition("p1")
        p2 = scheduler.partition("p2")
        p1.schedule(0.0, lambda: order.append("p1-a"))
        p2.schedule(0.0, lambda: order.append("p2-a"))
        scheduler.schedule(0.5, lambda: order.append("main-b"))
        scheduler.schedule(0.0, lambda: order.append("main-a"))
        p2.schedule(1.0, lambda: order.append("p2-b"))
        scheduler.run_until_idle()
        assert order == ["p1-a", "p2-a", "main-a", "main-b", "p2-b"]

    def test_partition_is_get_or_create(self):
        scheduler = Scheduler()
        stream = scheduler.partition("node-1")
        assert isinstance(stream, EventStream)
        assert scheduler.partition("node-1") is stream
        assert scheduler.partition("node-2") is not stream
        assert scheduler.partition_count == 2

    def test_unpartitioned_scheduler_keeps_fast_path(self):
        scheduler = Scheduler()
        scheduler.schedule(0.0, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.partition_count == 0

    def test_run_until_time_stops_at_horizon_across_streams(self):
        scheduler = Scheduler()
        order = []
        stream = scheduler.partition("p")
        stream.schedule(0.2, lambda: order.append("early"))
        scheduler.schedule(0.6, lambda: order.append("main-late"))
        stream.schedule(0.8, lambda: order.append("stream-late"))
        scheduler.run_until_time(0.5)
        assert order == ["early"]
        assert scheduler.now == pytest.approx(0.5)
        scheduler.run_until_idle()
        assert order == ["early", "main-late", "stream-late"]

    def test_run_until_sees_stream_only_events(self):
        """A condition satisfied only by a stream event must terminate."""
        scheduler = Scheduler()
        seen = []
        scheduler.partition("p").schedule(0.3, lambda: seen.append(1))
        scheduler.run_until(lambda: bool(seen))
        assert seen == [1]

    def test_stream_events_cancel_and_purge(self):
        scheduler = Scheduler()
        dispatched = []
        stream = scheduler.partition("p")
        events = [
            stream.schedule(0.1 * i, lambda i=i: dispatched.append(i))
            for i in range(200)
        ]
        for event in events[::2]:
            event.cancel()
        # Force purge consideration by scheduling/cancelling more churn.
        extra = [stream.schedule(5.0, lambda: dispatched.append(-1)) for _ in range(64)]
        for event in extra:
            event.cancel()
        scheduler.run_until_idle()
        assert dispatched == list(range(1, 200, 2))
        assert scheduler.pending_count == 0

    def test_stream_schedule_rejects_past(self):
        scheduler = Scheduler()
        stream = scheduler.partition("p")
        with pytest.raises(SchedulerError):
            stream.schedule(-0.1, lambda: None)
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until_idle()
        with pytest.raises(SchedulerError):
            stream.schedule_at(0.5, lambda: None)

    def test_call_soon_on_stream(self):
        scheduler = Scheduler()
        order = []
        scheduler.partition("p").call_soon(lambda: order.append("soon"))
        scheduler.run_until_idle()
        assert order == ["soon"]

    def test_len_and_repr(self):
        scheduler = Scheduler()
        stream = scheduler.partition("p")
        stream.schedule(1.0, lambda: None)
        assert len(stream) == 1
        assert "p" in repr(stream)
