"""Tests for the virtual clock."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import Clock


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_custom_start(self):
        assert Clock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            Clock(-1.0)

    def test_advance_to(self):
        clock = Clock()
        clock.advance_to(2.5)
        assert clock.now == 2.5

    def test_advance_to_same_time_allowed(self):
        clock = Clock(1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_advance_backwards_rejected(self):
        clock = Clock(3.0)
        with pytest.raises(ClockError):
            clock.advance_to(2.9)

    def test_advance_by(self):
        clock = Clock(1.0)
        clock.advance_by(0.5)
        assert clock.now == 1.5

    def test_advance_by_negative_rejected(self):
        clock = Clock()
        with pytest.raises(ClockError):
            clock.advance_by(-0.1)
