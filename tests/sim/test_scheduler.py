"""Tests for the discrete-event scheduler."""

import pytest

from repro.errors import DeadlockError, SchedulerError
from repro.sim import Scheduler


class TestScheduling:
    def test_events_run_in_time_order(self, scheduler: Scheduler):
        order = []
        scheduler.schedule(2.0, lambda: order.append("late"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.run_until_idle()
        assert order == ["early", "late"]

    def test_same_time_runs_in_scheduling_order(self, scheduler: Scheduler):
        order = []
        scheduler.schedule(1.0, lambda: order.append("a"))
        scheduler.schedule(1.0, lambda: order.append("b"))
        scheduler.schedule(1.0, lambda: order.append("c"))
        scheduler.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self, scheduler: Scheduler):
        times = []
        scheduler.schedule(1.5, lambda: times.append(scheduler.now))
        scheduler.run_until_idle()
        assert times == [1.5]

    def test_negative_delay_rejected(self, scheduler: Scheduler):
        with pytest.raises(SchedulerError):
            scheduler.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, scheduler: Scheduler):
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until_idle()
        with pytest.raises(SchedulerError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_call_soon_runs_at_current_time(self, scheduler: Scheduler):
        times = []
        scheduler.schedule(1.0, lambda: scheduler.call_soon(lambda: times.append(scheduler.now)))
        scheduler.run_until_idle()
        assert times == [1.0]

    def test_arguments_forwarded(self, scheduler: Scheduler):
        received = []
        scheduler.schedule(0.1, lambda a, b=None: received.append((a, b)), 1, b=2)
        scheduler.run_until_idle()
        assert received == [(1, 2)]


class TestCancellation:
    def test_cancelled_event_does_not_run(self, scheduler: Scheduler):
        ran = []
        event = scheduler.schedule(1.0, lambda: ran.append(True))
        event.cancel()
        scheduler.run_until_idle()
        assert ran == []

    def test_pending_flag(self, scheduler: Scheduler):
        event = scheduler.schedule(1.0, lambda: None)
        assert event.pending
        event.cancel()
        assert not event.pending

    def test_dispatched_event_not_pending(self, scheduler: Scheduler):
        event = scheduler.schedule(1.0, lambda: None)
        scheduler.run_until_idle()
        assert event.dispatched and not event.pending


class TestRunModes:
    def test_run_until_idle_returns_dispatch_count(self, scheduler: Scheduler):
        for _ in range(5):
            scheduler.schedule(0.1, lambda: None)
        assert scheduler.run_until_idle() == 5

    def test_run_for_only_runs_due_events(self, scheduler: Scheduler):
        ran = []
        scheduler.schedule(1.0, lambda: ran.append("early"))
        scheduler.schedule(5.0, lambda: ran.append("late"))
        scheduler.run_for(2.0)
        assert ran == ["early"]
        assert scheduler.now == 2.0

    def test_run_for_advances_clock_even_without_events(self, scheduler: Scheduler):
        scheduler.run_for(3.0)
        assert scheduler.now == 3.0

    def test_run_for_negative_rejected(self, scheduler: Scheduler):
        with pytest.raises(SchedulerError):
            scheduler.run_for(-1.0)

    def test_run_until_time_dispatches_up_to_deadline(self, scheduler: Scheduler):
        ran = []
        scheduler.schedule(1.0, lambda: ran.append(1))
        scheduler.schedule(2.0, lambda: ran.append(2))
        scheduler.schedule(3.0, lambda: ran.append(3))
        scheduler.run_until_time(2.0)
        assert ran == [1, 2]

    def test_run_until_condition(self, scheduler: Scheduler):
        state = {"done": False}
        scheduler.schedule(1.0, lambda: state.update(done=True))
        scheduler.schedule(2.0, lambda: None)
        dispatched = scheduler.run_until(lambda: state["done"])
        assert dispatched == 1
        assert scheduler.now == 1.0

    def test_run_until_raises_deadlock_when_unsatisfiable(self, scheduler: Scheduler):
        with pytest.raises(DeadlockError):
            scheduler.run_until(lambda: False)

    def test_run_until_idle_guard_against_runaway(self, scheduler: Scheduler):
        def reschedule():
            scheduler.schedule(0.001, reschedule)

        scheduler.schedule(0.001, reschedule)
        with pytest.raises(SchedulerError):
            scheduler.run_until_idle(max_events=100)

    def test_events_scheduled_during_dispatch_run(self, scheduler: Scheduler):
        order = []

        def outer():
            order.append("outer")
            scheduler.schedule(0.5, lambda: order.append("inner"))

        scheduler.schedule(1.0, outer)
        scheduler.run_until_idle()
        assert order == ["outer", "inner"]


class TestEventState:
    def test_repr_reports_done_not_cancelled_after_dispatch(self, scheduler: Scheduler):
        event = scheduler.schedule(1.0, lambda: None, label="job")
        scheduler.run_until_idle()
        event.cancel()  # defensive late cancel: must stay a no-op
        assert "done" in repr(event)
        assert "cancelled" not in repr(event)
        assert not event.cancelled

    def test_repr_states(self, scheduler: Scheduler):
        pending = scheduler.schedule(1.0, lambda: None)
        cancelled = scheduler.schedule(1.0, lambda: None)
        cancelled.cancel()
        assert "pending" in repr(pending)
        assert "cancelled" in repr(cancelled)

    def test_double_cancel_keeps_pending_count_consistent(self, scheduler: Scheduler):
        event = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert scheduler.pending_count == 1

    def test_pending_count_tracks_cancellation(self, scheduler: Scheduler):
        events = [scheduler.schedule(1.0, lambda: None) for _ in range(10)]
        for event in events[:4]:
            event.cancel()
        assert scheduler.pending_count == 6
        assert scheduler.run_until_idle() == 6
        assert scheduler.pending_count == 0

    def test_lazy_purge_preserves_order_under_mass_cancellation(self, scheduler: Scheduler):
        order = []
        keepers = []
        for index in range(500):
            event = scheduler.schedule(
                (index % 7) * 0.1, lambda i=index: order.append(i)
            )
            if index % 5:
                event.cancel()  # 80% cancelled: triggers the heap purge
            else:
                keepers.append(((index % 7) * 0.1, index))
        assert scheduler.pending_count == len(keepers)
        scheduler.run_until_idle()
        keepers.sort()
        assert order == [index for _time, index in keepers]

    def test_run_for_with_only_cancelled_events_advances_clock(self, scheduler: Scheduler):
        event = scheduler.schedule(1.0, lambda: None)
        event.cancel()
        scheduler.run_for(2.0)
        assert scheduler.now == 2.0

    def test_mass_cancel_inside_callback_does_not_strand_run_loop(
        self, scheduler: Scheduler
    ):
        """A callback that triggers the lazy heap purge (mass cancellation)
        must not leave run_until_time iterating a stale queue: follow-up
        events still dispatch and the clock never runs past them."""
        ran = []
        victims = [scheduler.schedule(2.0, lambda: ran.append("victim")) for _ in range(200)]

        def mass_cancel():
            for event in victims:
                event.cancel()
            scheduler.schedule(0.5, lambda: ran.append("follow-up"))

        scheduler.schedule(1.0, mass_cancel)
        scheduler.run_for(5.0)
        assert ran == ["follow-up"]
        assert scheduler.now == 5.0
        assert scheduler.pending_count == 0
        scheduler.run_until_idle()  # must not raise (clock never overshot)


class TestIntrospection:
    def test_pending_and_dispatched_counts(self, scheduler: Scheduler):
        scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        assert scheduler.pending_count == 2
        scheduler.run_until_idle()
        assert scheduler.pending_count == 0
        assert scheduler.dispatched_count == 2

    def test_trace_records_labels(self, scheduler: Scheduler):
        scheduler.enable_tracing()
        scheduler.schedule(1.0, lambda: None, label="first")
        scheduler.schedule(2.0, lambda: None, label="second")
        scheduler.run_until_idle()
        assert scheduler.trace == [(1.0, "first"), (2.0, "second")]

    def test_trace_empty_without_tracing(self, scheduler: Scheduler):
        scheduler.schedule(1.0, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.trace == []
