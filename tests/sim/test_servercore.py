"""Tests for the bounded server CPU model."""

import pytest

from repro.errors import SchedulerError
from repro.sim import Scheduler, ServerCore


class TestServerCore:
    def test_idle_machine_charges_only_the_cost(self, scheduler: Scheduler):
        core = ServerCore(scheduler, cores=1)
        assert core.charge(0.5) == 0.5

    def test_single_core_serialises_concurrent_jobs(self, scheduler: Scheduler):
        core = ServerCore(scheduler, cores=1)
        assert core.charge(1.0) == 1.0
        assert core.charge(1.0) == 2.0
        assert core.charge(0.5) == 2.5

    def test_two_cores_run_two_jobs_in_parallel(self, scheduler: Scheduler):
        core = ServerCore(scheduler, cores=2)
        assert core.charge(1.0) == 1.0
        assert core.charge(1.0) == 1.0
        # The third job queues behind the earliest-free core.
        assert core.charge(1.0) == 2.0

    def test_cores_free_up_as_virtual_time_passes(self, scheduler: Scheduler):
        core = ServerCore(scheduler, cores=1)
        core.charge(1.0)
        scheduler.schedule(2.0, lambda: None)
        scheduler.run_until_idle()
        # At t=2.0 the core has been idle for a second.
        assert core.charge(0.25) == 0.25

    def test_contention_statistics(self, scheduler: Scheduler):
        core = ServerCore(scheduler, cores=1)
        core.charge(1.0)
        core.charge(1.0)
        core.charge(1.0)
        assert core.jobs_charged == 3
        assert core.contended_jobs == 2
        assert core.busy_seconds == pytest.approx(3.0)
        assert core.waited_seconds == pytest.approx(1.0 + 2.0)
        assert core.max_queue_delay == pytest.approx(2.0)

    def test_busy_cores_gauge(self, scheduler: Scheduler):
        core = ServerCore(scheduler, cores=4)
        assert core.busy_cores == 0
        core.charge(1.0)
        core.charge(1.0)
        assert core.busy_cores == 2

    def test_zero_cost_job_is_free_on_an_idle_machine(self, scheduler: Scheduler):
        core = ServerCore(scheduler, cores=1)
        assert core.charge(0.0) == 0.0

    def test_invalid_configuration_rejected(self, scheduler: Scheduler):
        with pytest.raises(SchedulerError):
            ServerCore(scheduler, cores=0)
        core = ServerCore(scheduler, cores=1)
        with pytest.raises(SchedulerError):
            core.charge(-0.1)

    def test_charging_is_deterministic(self, scheduler: Scheduler):
        def run() -> list[float]:
            local = Scheduler()
            core = ServerCore(local, cores=3)
            delays = []
            for index in range(20):
                delays.append(core.charge(0.1 * (index % 4)))
            return delays

        assert run() == run()
