"""Tests for the SDE Interface Server (the integrated HTTP publication server)."""

import pytest

from repro.core.sde.interface_server import InterfaceServer
from repro.errors import PublicationError
from repro.net.http import HttpClient


@pytest.fixture
def interface_server(network):
    server = InterfaceServer(network.host("server"), 8080)
    server.start()
    return server


@pytest.fixture
def client(network):
    return HttpClient(network.host("client"))


class TestPublication:
    def test_publish_and_fetch(self, interface_server, client):
        url = interface_server.publish("/wsdl/Calc.wsdl", "<definitions/>")
        response = client.get(url)
        assert response.ok
        assert response.body == "<definitions/>"
        assert response.header("content-type").startswith("text/xml")

    def test_republish_replaces_content(self, interface_server, client):
        interface_server.publish("/doc", "v1", "text/plain")
        interface_server.publish("/doc", "v2", "text/plain")
        assert client.get(interface_server.url_for("/doc")).body == "v2"
        assert interface_server.publication_count("/doc") == 2

    def test_unknown_path_is_404(self, interface_server, client):
        assert client.get(interface_server.url_for("/nothing")).status == 404

    def test_withdraw(self, interface_server, client):
        interface_server.publish("/doc", "content", "text/plain")
        interface_server.withdraw("/doc")
        assert client.get(interface_server.url_for("/doc")).status == 404

    def test_document_accessor(self, interface_server):
        interface_server.publish("/doc", "content", "text/plain")
        assert interface_server.document("/doc") == "content"
        assert interface_server.document("/missing") is None

    def test_published_paths_sorted(self, interface_server):
        interface_server.publish("/b", "x", "text/plain")
        interface_server.publish("/a", "y", "text/plain")
        assert interface_server.published_paths == ("/a", "/b")

    def test_invalid_path_rejected(self, interface_server):
        with pytest.raises(PublicationError):
            interface_server.publish("no-slash", "x")


class TestLifecycle:
    def test_stop_and_restart(self, interface_server, client):
        interface_server.publish("/doc", "content", "text/plain")
        interface_server.stop()
        assert not interface_server.running
        with pytest.raises(Exception):
            client.get(interface_server.url_for("/doc"))
        interface_server.start()
        assert client.get(interface_server.url_for("/doc")).ok

    def test_documents_survive_restart(self, interface_server, client):
        interface_server.publish("/doc", "kept", "text/plain")
        interface_server.stop()
        interface_server.start()
        assert client.get(interface_server.url_for("/doc")).body == "kept"
