"""Tests for the SDE call handlers (§5.1.3, §5.2.3, §5.7)."""

import pytest

from repro.core.sde import SDEConfig
from repro.errors import (
    NonExistentMethodError,
    RemoteApplicationError,
    ServerNotInitializedError,
)
from repro.net.http import HttpClient
from repro.rmitypes import INT, STRING
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


def _operations():
    return [
        OperationSpec("add", (("a", INT), ("b", INT)), INT, body=lambda self, a, b: a + b),
        OperationSpec(
            "explode", (("reason", STRING),), STRING,
            body=lambda self, reason: (_ for _ in ()).throw(RuntimeError(reason)),
        ),
    ]


@pytest.fixture
def fast_testbed():
    return LiveDevelopmentTestbed(
        sde_config=SDEConfig(publication_timeout=1.0, generation_cost=0.05)
    )


class TestSoapCallHandler:
    def test_server_not_initialized_before_first_instance(self, fast_testbed):
        environment = fast_testbed.environment
        sde = fast_testbed.sde
        calculator = environment.create_class("Calculator", superclass=sde.soap_server_class)
        calculator.add_method("add", (), INT, body=lambda self: 0, distributed=True)
        fast_testbed.publish_now("Calculator")
        binding = fast_testbed.connect_soap_client("Calculator")
        with pytest.raises(ServerNotInitializedError):
            binding.invoke("add")
        handler = sde.managed_server("Calculator").call_handler
        assert handler.stats.not_initialized_faults == 1
        # Creating the instance activates the handler and the call succeeds.
        calculator.new_instance()
        assert binding.invoke("add") == 0

    def test_successful_dispatch_and_stats(self, fast_testbed):
        fast_testbed.create_soap_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        binding = fast_testbed.connect_soap_client("Calculator")
        assert binding.invoke("add", 2, 3) == 5
        handler = fast_testbed.sde.managed_server("Calculator").call_handler
        assert handler.stats.calls_received == 1
        assert handler.stats.calls_completed == 1

    def test_application_exception_wrapped(self, fast_testbed):
        fast_testbed.create_soap_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        binding = fast_testbed.connect_soap_client("Calculator")
        with pytest.raises(RemoteApplicationError) as excinfo:
            binding.invoke("explode", "boom")
        assert "boom" in str(excinfo.value)
        handler = fast_testbed.sde.managed_server("Calculator").call_handler
        assert handler.stats.application_faults == 1

    def test_unknown_operation_returns_non_existent_method(self, fast_testbed):
        fast_testbed.create_soap_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        binding = fast_testbed.connect_soap_client("Calculator")
        with pytest.raises(NonExistentMethodError):
            binding.invoke("subtract", 5, 3)
        handler = fast_testbed.sde.managed_server("Calculator").call_handler
        assert handler.stats.non_existent_method_faults == 1

    def test_changed_signature_treated_as_stale(self, fast_testbed):
        calculator, _instance = fast_testbed.create_soap_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        binding = fast_testbed.connect_soap_client("Calculator")
        method = calculator.method("add")
        # Change arity: add now takes three ints.
        from repro.interface import Parameter

        method.set_parameters((Parameter("a", INT), Parameter("b", INT), Parameter("c", INT)))
        method.set_body(lambda self, a, b, c: a + b + c)
        with pytest.raises(NonExistentMethodError):
            binding.invoke("add", 1, 2)  # the old two-argument form
        # After the §6 refresh the client sees the new signature and can call it.
        assert binding.description.operation("add").arity == 3
        assert binding.invoke("add", 1, 2, 3) == 6

    def test_malformed_soap_request_fault(self, fast_testbed):
        fast_testbed.create_soap_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        handler = fast_testbed.sde.managed_server("Calculator").call_handler
        client = HttpClient(fast_testbed.client_host)
        response = client.post(handler.endpoint_url, "this is not xml")
        parsed = SoapResponse.from_xml(response.body)
        assert parsed.is_fault
        assert parsed.fault.is_malformed_request
        assert handler.stats.malformed_requests == 1

    def test_get_on_endpoint_points_to_wsdl(self, fast_testbed):
        fast_testbed.create_soap_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        handler = fast_testbed.sde.managed_server("Calculator").call_handler
        client = HttpClient(fast_testbed.client_host)
        response = client.get(handler.endpoint_url)
        assert response.ok
        assert response.body.endswith("/wsdl/Calculator.wsdl")

    def test_stale_call_blocks_until_publication(self, fast_testbed):
        """§5.7: the fault is only sent after the publisher caught up."""
        calculator, _instance = fast_testbed.create_soap_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        binding = fast_testbed.connect_soap_client("Calculator")
        publisher = fast_testbed.sde.managed_server("Calculator").publisher
        version_before = publisher.version
        calculator.method("add").rename("sum")  # timer starts; not yet published
        start = fast_testbed.now
        with pytest.raises(NonExistentMethodError) as excinfo:
            binding.invoke("add", 1, 2)
        # The reply could not have been sent before the forced generation
        # completed (generation_cost), so the call took at least that long.
        assert fast_testbed.now - start >= fast_testbed.sde.config.generation_cost
        assert publisher.version == version_before + 1
        assert excinfo.value.interface_version == publisher.version
        handler = fast_testbed.sde.managed_server("Calculator").call_handler
        assert handler.stats.stalled_calls == 1

    def test_queued_calls_processed_after_stall(self, fast_testbed):
        """Calls arriving during a §5.7 stall are queued, not lost."""
        calculator, _instance = fast_testbed.create_soap_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        handler = fast_testbed.sde.managed_server("Calculator").call_handler
        calculator.method("add").rename("sum")

        # Issue the stale call and a valid call back to back from the HTTP
        # layer so the second arrives while the first is stalled.
        client_a = HttpClient(fast_testbed.client_host)
        client_b = HttpClient(fast_testbed.client_host)
        stale = SoapRequest.for_call("add", (1, 2), namespace=handler.server.publisher.namespace)
        valid = SoapRequest.for_call("sum", (1, 2), namespace=handler.server.publisher.namespace)

        responses = {}
        scheduler = fast_testbed.scheduler
        scheduler.schedule(0.0, lambda: responses.update(stale=client_a.post(handler.endpoint_url, stale.to_xml())))
        scheduler.schedule(0.001, lambda: responses.update(valid=client_b.post(handler.endpoint_url, valid.to_xml())))
        scheduler.run_until_idle()

        stale_response = SoapResponse.from_xml(responses["stale"].body)
        valid_response = SoapResponse.from_xml(responses["valid"].body)
        assert stale_response.is_fault and stale_response.fault.is_non_existent_method
        assert not valid_response.is_fault and valid_response.return_value == 3
        assert handler.stats.queued_while_stalled >= 1


class TestCorbaCallHandler:
    def _corba_world(self, fast_testbed):
        calculator, instance = fast_testbed.create_corba_server("Calculator", _operations())
        fast_testbed.publish_now("Calculator")
        binding = fast_testbed.connect_corba_client("Calculator")
        return calculator, instance, binding

    def test_successful_dispatch(self, fast_testbed):
        _calculator, _instance, binding = self._corba_world(fast_testbed)
        assert binding.invoke("add", 2, 3) == 5

    def test_application_exception_wrapped(self, fast_testbed):
        _calculator, _instance, binding = self._corba_world(fast_testbed)
        with pytest.raises(RemoteApplicationError):
            binding.invoke("explode", "bad")

    def test_unknown_operation(self, fast_testbed):
        _calculator, _instance, binding = self._corba_world(fast_testbed)
        with pytest.raises(NonExistentMethodError):
            binding.invoke("divide", 1, 2)

    def test_server_not_initialized(self, fast_testbed):
        environment = fast_testbed.environment
        sde = fast_testbed.sde
        mailer = environment.create_class("Mailer", superclass=sde.corba_server_class)
        mailer.add_method("ping", (), STRING, body=lambda self: "pong", distributed=True)
        fast_testbed.publish_now("Mailer")
        binding = fast_testbed.connect_corba_client("Mailer")
        with pytest.raises(ServerNotInitializedError):
            binding.invoke("ping")
        mailer.new_instance()
        assert binding.invoke("ping") == "pong"

    def test_stale_call_triggers_reactive_publication(self, fast_testbed):
        calculator, _instance, binding = self._corba_world(fast_testbed)
        publisher = fast_testbed.sde.managed_server("Calculator").publisher
        version_before = publisher.version
        calculator.method("add").rename("sum")
        with pytest.raises(NonExistentMethodError):
            binding.invoke("add", 1, 2)
        assert publisher.version == version_before + 1
        assert binding.guarantee_records[-1].satisfied

    def test_dsi_means_orb_survives_interface_changes(self, fast_testbed):
        """§5.2.2: the Server ORB is never re-initialised on interface changes."""
        calculator, _instance, binding = self._corba_world(fast_testbed)
        handler = fast_testbed.sde.managed_server("Calculator").call_handler
        orb_before = handler.orb
        calculator.add_method("triple", (), INT, body=lambda self: 0, distributed=True)
        calculator.method("add").rename("sum")
        fast_testbed.settle()
        assert handler.orb is orb_before
        assert handler.orb.running
        binding.refresh()
        assert binding.invoke("sum", 4, 4) == 8
