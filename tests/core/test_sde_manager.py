"""Tests for the SDE Manager: automated deployment, single-instance rule,
technology plug-ins, and the SDE Manager Interface."""

import pytest

from repro.core.sde import SDEConfig, SDEManager, SDEManagerInterface, Technology
from repro.core.sde.call_handler import CallHandler, DispatchOutcome
from repro.core.sde.publisher import DLPublisher
from repro.errors import DeploymentError, PublicationError, TechnologyError
from repro.interface import Parameter
from repro.jpie import JPieEnvironment
from repro.rmitypes import INT
from repro.soap.wsdl import parse_wsdl


@pytest.fixture
def world(network, scheduler):
    environment = JPieEnvironment()
    manager = SDEManager(
        environment,
        scheduler,
        network.host("server"),
        SDEConfig(publication_timeout=1.0, generation_cost=0.05),
    )
    return environment, manager


class TestGatewayClasses:
    def test_gateway_classes_created(self, world):
        environment, manager = world
        assert environment.get_class("SDEServer") is not None
        assert manager.soap_server_class.name == "SOAPServer"
        assert manager.corba_server_class.name == "CORBAServer"
        assert manager.soap_server_class.is_subclass_of(environment.get_class("SDEServer"))

    def test_registered_technologies(self, world):
        _environment, manager = world
        assert [technology.name for technology in manager.technologies] == ["soap", "corba"]

    def test_gateway_lookup_by_technology(self, world):
        _environment, manager = world
        assert manager.gateway_class("soap").name == "SOAPServer"
        with pytest.raises(TechnologyError):
            manager.gateway_class("rmi-iiop")


class TestAutomatedDeployment:
    def test_extending_soap_gateway_deploys_automatically(self, world):
        environment, manager = world
        environment.create_class("Calculator", superclass=manager.soap_server_class)
        assert manager.is_managed("Calculator")
        server = manager.managed_server("Calculator")
        assert server.technology.name == "soap"
        assert server.call_handler is not None
        assert server.publisher is not None

    def test_minimal_interface_published_at_deployment(self, world):
        environment, manager = world
        environment.create_class("Calculator", superclass=manager.soap_server_class)
        publisher = manager.managed_server("Calculator").publisher
        document = manager.interface_server.document(publisher.document_path)
        parsed = parse_wsdl(document)
        assert parsed.operations == ()
        assert parsed.endpoint_url.endswith("/sde/Calculator")

    def test_extending_corba_gateway_publishes_ior(self, world):
        environment, manager = world
        environment.create_class("Mailer", superclass=manager.corba_server_class)
        publisher = manager.managed_server("Mailer").publisher
        assert manager.interface_server.document(publisher.ior_path).startswith("IOR:")

    def test_unrelated_classes_not_managed(self, world):
        environment, manager = world
        environment.create_class("PlainHelper")
        assert not manager.is_managed("PlainHelper")

    def test_gateway_classes_themselves_not_managed(self, world):
        _environment, manager = world
        assert not manager.is_managed("SOAPServer")
        assert not manager.is_managed("CORBAServer")

    def test_duplicate_deployment_rejected(self, world):
        environment, manager = world
        calculator = environment.create_class("Calculator", superclass=manager.soap_server_class)
        with pytest.raises(DeploymentError):
            manager.deploy(calculator, manager.technologies[0])

    def test_distinct_ports_per_managed_server(self, world):
        environment, manager = world
        environment.create_class("Alpha", superclass=manager.soap_server_class)
        environment.create_class("Beta", superclass=manager.soap_server_class)
        first = manager.managed_server("Alpha").call_handler.endpoint_url
        second = manager.managed_server("Beta").call_handler.endpoint_url
        assert first != second

    def test_undeploy_releases_resources(self, world):
        environment, manager = world
        environment.create_class("Calculator", superclass=manager.soap_server_class)
        publisher = manager.managed_server("Calculator").publisher
        manager.undeploy("Calculator")
        assert not manager.is_managed("Calculator")
        assert manager.interface_server.document(publisher.document_path) is None

    def test_unknown_managed_server_lookup(self, world):
        _environment, manager = world
        with pytest.raises(DeploymentError):
            manager.managed_server("Ghost")


class TestSingleInstanceRule:
    def test_first_instance_activates_call_handler(self, world):
        environment, manager = world
        calculator = environment.create_class("Calculator", superclass=manager.soap_server_class)
        assert not manager.managed_server("Calculator").call_handler.active
        instance = calculator.new_instance()
        assert manager.managed_server("Calculator").call_handler.active
        assert manager.managed_server("Calculator").instance is instance

    def test_second_instance_rejected(self, world):
        environment, manager = world
        calculator = environment.create_class("Calculator", superclass=manager.soap_server_class)
        calculator.new_instance()
        with pytest.raises(DeploymentError):
            calculator.new_instance()

    def test_unmanaged_classes_may_have_many_instances(self, world):
        environment, _manager = world
        helper = environment.create_class("Helper")
        helper.new_instance()
        helper.new_instance()


class TestTechnologyExtensibility:
    """§5.3: a third technology can be plugged in without touching the manager."""

    class RecordingPublisher(DLPublisher):
        def render(self, description):
            return f"TOY-INTERFACE {description.service_name} v{description.version} " + ",".join(
                description.operation_names()
            )

        @property
        def document_path(self):
            return f"/toy/{self.dynamic_class.name}.toy"

    class RecordingHandler(CallHandler):
        def __init__(self, manager, server):
            super().__init__(manager, server)
            self.started = False

        @property
        def endpoint_url(self):
            return f"toy://{self.manager.host.name}/{self.server.name}"

        def start(self):
            self.started = True

        def stop(self):
            self.started = False

    def _toy_technology(self):
        def publisher_factory(manager, server):
            return self.RecordingPublisher(
                dynamic_class=server.dynamic_class,
                interface_server=manager.interface_server,
                scheduler=manager.scheduler,
                namespace="urn:toy",
                endpoint_url=server.call_handler.endpoint_url,
                timeout=manager.config.publication_timeout,
                generation_cost=manager.config.generation_cost,
            )

        return Technology(
            name="toy",
            gateway_class_name="ToyServer",
            publisher_factory=publisher_factory,
            call_handler_factory=lambda manager, server: self.RecordingHandler(manager, server),
        )

    def test_register_and_deploy_third_technology(self, world, scheduler):
        environment, manager = world
        manager.register_technology(self._toy_technology())
        assert environment.get_class("ToyServer") is not None

        toy = environment.create_class("ToyService", superclass=environment.get_class("ToyServer"))
        toy.add_method("ping", (), INT, body=lambda self: 1, distributed=True)
        assert manager.is_managed("ToyService")
        server = manager.managed_server("ToyService")
        assert server.call_handler.started

        scheduler.run_for(2.0)
        document = manager.interface_server.document("/toy/ToyService.toy")
        assert document.startswith("TOY-INTERFACE ToyService")
        assert "ping" in document

    def test_duplicate_technology_name_rejected(self, world):
        _environment, manager = world
        with pytest.raises(TechnologyError):
            manager.register_technology(self._toy_technology())
            manager.register_technology(self._toy_technology())


class TestManagerInterface:
    def test_timeout_control(self, world):
        environment, manager = world
        environment.create_class("Calculator", superclass=manager.soap_server_class)
        ui = SDEManagerInterface(manager)
        ui.set_publication_timeout("Calculator", 9.0)
        assert ui.publication_timeout("Calculator") == 9.0
        with pytest.raises(PublicationError):
            ui.set_publication_timeout("Calculator", 0)

    def test_force_publication_and_view_documents(self, world, scheduler):
        environment, manager = world
        calculator = environment.create_class("Calculator", superclass=manager.soap_server_class)
        calculator.add_method(
            "add", (Parameter("a", INT), Parameter("b", INT)), INT,
            body=lambda self, a, b: a + b, distributed=True,
        )
        ui = SDEManagerInterface(manager)
        ui.force_publication("Calculator")
        scheduler.run_for(0.2)
        assert "add" in ui.view_interface_document("Calculator")
        assert "int add(int a, int b)" in ui.view_live_interface("Calculator")

    def test_publication_status_snapshot(self, world, scheduler):
        environment, manager = world
        calculator = environment.create_class("Calculator", superclass=manager.soap_server_class)
        ui = SDEManagerInterface(manager)
        status = ui.publication_status("Calculator")
        assert status.class_name == "Calculator"
        assert status.technology == "soap"
        assert status.version == 1  # the minimal publication
        assert status.published_current  # no distributed methods yet
        calculator.add_method("op", (), INT, body=lambda self: 0, distributed=True)
        status = ui.publication_status("Calculator")
        assert status.timer_running
        assert not status.published_current

    def test_managed_class_names(self, world):
        environment, manager = world
        environment.create_class("Alpha", superclass=manager.soap_server_class)
        environment.create_class("Beta", superclass=manager.corba_server_class)
        ui = SDEManagerInterface(manager)
        assert set(ui.managed_class_names()) == {"Alpha", "Beta"}

    def test_interface_server_control(self, world):
        _environment, manager = world
        ui = SDEManagerInterface(manager)
        assert ui.interface_server_running
        ui.stop_interface_server()
        assert not ui.interface_server_running
        ui.start_interface_server()
        assert ui.interface_server_running
