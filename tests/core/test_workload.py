"""Tests for the multi-client workload driver and the scale-out experiment."""

from __future__ import annotations

import pytest

from repro.experiments.multi_client import (
    SCENARIO_STALE_STORM,
    format_scaling,
    run_multi_client,
)
from repro.rmitypes import STRING, VOID
from repro.testbed import LiveDevelopmentTestbed, OperationSpec
from repro.workload import WorkloadSpec, run_workload


def _echo_testbed(technology: str) -> tuple[LiveDevelopmentTestbed, object]:
    testbed = LiveDevelopmentTestbed()
    create = (
        testbed.create_soap_server if technology == "soap" else testbed.create_corba_server
    )
    dynamic_class, _ = create(
        "EchoService",
        [OperationSpec("echo", (("m", STRING),), STRING, body=lambda _self, m: m)],
    )
    testbed.publish_now("EchoService")
    return testbed, dynamic_class


class TestClientFleet:
    def test_create_client_fleet_names_and_count(self):
        testbed, _ = _echo_testbed("soap")
        fleet = testbed.create_client_fleet(3)
        assert [host.name for host in fleet] == ["wl-client-1", "wl-client-2", "wl-client-3"]
        assert all(host.network is testbed.network for host in fleet)

    def test_add_client_host_auto_names(self):
        testbed, _ = _echo_testbed("soap")
        host = testbed.add_client_host()
        assert host.name.startswith("client-")


class TestWorkloadSteadyState:
    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_all_calls_succeed(self, technology):
        testbed, _ = _echo_testbed(technology)
        report = run_workload(
            testbed,
            "EchoService",
            WorkloadSpec(technology=technology, clients=6, calls_per_client=4),
        )
        assert report.total_calls == 24
        assert report.total_successes == 24
        assert report.total_stale_faults == 0
        assert report.duration > 0
        assert report.mean_rtt > 0
        assert report.throughput > 0

    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_one_keepalive_connection_per_client(self, technology):
        testbed, _ = _echo_testbed(technology)
        report = run_workload(
            testbed,
            "EchoService",
            WorkloadSpec(technology=technology, clients=5, calls_per_client=3),
        )
        assert report.server_connections == 5
        assert report.server_replies_sent == 15

    def test_per_client_results_recorded(self):
        testbed, _ = _echo_testbed("soap")
        report = run_workload(
            testbed,
            "EchoService",
            WorkloadSpec(technology="soap", clients=3, calls_per_client=2),
        )
        assert len(report.clients) == 3
        for client in report.clients:
            assert client.calls == 2
            assert client.successes == 2
            assert client.mean_rtt > 0
            assert client.max_rtt >= client.mean_rtt

    def test_think_time_stretches_duration(self):
        testbed_fast, _ = _echo_testbed("soap")
        fast = run_workload(
            testbed_fast,
            "EchoService",
            WorkloadSpec(technology="soap", clients=2, calls_per_client=3),
        )
        testbed_slow, _ = _echo_testbed("soap")
        slow = run_workload(
            testbed_slow,
            "EchoService",
            WorkloadSpec(
                technology="soap", clients=2, calls_per_client=3, think_time=1.0
            ),
        )
        assert slow.duration > fast.duration + 1.5


class TestWorkloadDeterminism:
    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_identical_runs_produce_identical_rtts(self, technology):
        def run_once():
            testbed, dynamic_class = _echo_testbed(technology)
            spec = WorkloadSpec(
                technology=technology,
                clients=8,
                calls_per_client=4,
                stale_every=4,
                think_time=0.05,
                scripted_events=(
                    (
                        0.0,
                        lambda: dynamic_class.add_method(
                            "added_later", (), VOID, distributed=True
                        ),
                    ),
                ),
            )
            return run_workload(testbed, "EchoService", spec)

        first, second = run_once(), run_once()
        assert first.all_rtts == second.all_rtts
        assert first.duration == second.duration
        assert first.max_stall_queue_depth == second.max_stall_queue_depth


class TestWorkloadStaleStorm:
    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_stall_queue_forms_and_drains(self, technology):
        testbed, dynamic_class = _echo_testbed(technology)
        spec = WorkloadSpec(
            technology=technology,
            clients=8,
            calls_per_client=6,
            stale_every=3,
            think_time=0.05,
            scripted_events=(
                (
                    0.0,
                    lambda: dynamic_class.add_method(
                        "added_later", (), VOID, distributed=True
                    ),
                ),
            ),
        )
        report = run_workload(testbed, "EchoService", spec)
        # Every third of six calls per client is stale.
        assert report.total_stale_faults == 8 * 2
        assert report.stalled_calls > 0
        assert report.max_stall_queue_depth > 0
        # Everything drained: every call got an answer.
        assert report.total_calls == 8 * 6
        assert report.total_successes == 8 * 4


class TestWorkloadReruns:
    def test_max_stall_queue_depth_is_per_run(self):
        """A later run on the same testbed must not inherit an earlier
        run's stall-queue high-water mark."""
        testbed, dynamic_class = _echo_testbed("soap")
        storm = run_workload(
            testbed,
            "EchoService",
            WorkloadSpec(
                technology="soap",
                clients=6,
                calls_per_client=6,
                stale_every=3,
                think_time=0.05,
                scripted_events=(
                    (
                        0.0,
                        lambda: dynamic_class.add_method(
                            "added_later", (), VOID, distributed=True
                        ),
                    ),
                ),
            ),
        )
        assert storm.max_stall_queue_depth > 0
        testbed.settle()

        steady = run_workload(
            testbed,
            "EchoService",
            WorkloadSpec(technology="soap", clients=6, calls_per_client=3),
        )
        assert steady.max_stall_queue_depth == 0
        # The lifetime maximum on the handler stats survives for observers.
        handler = testbed.sde.managed_server("EchoService").call_handler
        assert handler.stats.max_stall_queue_depth == storm.max_stall_queue_depth
        # Endpoint accounting is per run too, not lifetime.
        assert steady.server_replies_sent == 6 * 3
        assert steady.server_connections == 6


class TestScalingExperiment:
    @pytest.mark.parametrize("technology", ["soap", "corba"])
    def test_steady_scenario_summary(self, technology):
        result = run_multi_client(technology, clients=4, calls_per_client=3)
        assert result.total_calls == 12
        assert result.server_connections == 4
        assert result.stalled_calls == 0

    def test_stale_storm_scenario_stalls(self):
        result = run_multi_client(
            "soap", clients=6, calls_per_client=6, scenario=SCENARIO_STALE_STORM
        )
        assert result.stalled_calls > 0
        assert result.max_stall_queue_depth > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_multi_client("soap", clients=1, scenario="nope")

    def test_format_scaling_renders_rows(self):
        results = [run_multi_client("soap", clients=2, calls_per_client=2)]
        table = format_scaling(results)
        assert "soap" in table
        assert "steady" in table


class TestWorkloadValidation:
    def test_unknown_technology_rejected(self):
        testbed, _ = _echo_testbed("soap")
        with pytest.raises(ValueError):
            run_workload(testbed, "EchoService", WorkloadSpec(technology="grpc"))

    def test_mismatched_fleet_rejected(self):
        from repro.workload import MultiClientWorkload

        testbed, _ = _echo_testbed("soap")
        hosts = testbed.create_client_fleet(2)
        with pytest.raises(ValueError):
            MultiClientWorkload(
                testbed,
                "EchoService",
                WorkloadSpec(technology="soap", clients=3),
                client_hosts=hosts,
            )


class TestCoreWaitAccounting:
    def test_server_max_core_wait_is_per_run(self):
        """The longest single core wait is a per-run figure (as documented):
        a light run after a heavy one must not inherit its high water,
        while the core keeps the lifetime maximum for observers."""
        from repro.net.latency import era_2004_cost_model

        testbed = LiveDevelopmentTestbed(
            cost_model=era_2004_cost_model(), server_cores=1
        )
        testbed.create_soap_server(
            "EchoService",
            [OperationSpec("echo", (("m", STRING),), STRING, body=lambda _s, m: m)],
        )
        testbed.publish_now("EchoService")
        heavy = run_workload(
            testbed,
            "EchoService",
            WorkloadSpec(technology="soap", clients=16, calls_per_client=3),
        )
        light = run_workload(
            testbed,
            "EchoService",
            WorkloadSpec(technology="soap", clients=1, calls_per_client=1),
        )
        assert heavy.server_max_core_wait > 0
        assert light.server_max_core_wait < heavy.server_max_core_wait
        # The core itself keeps the lifetime high-water mark.
        assert testbed.sde.server_core.max_queue_delay == heavy.server_max_core_wait
