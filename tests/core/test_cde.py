"""Tests for CDE: dynamic client bindings, stub management, §6 client side."""

import pytest

from repro.core.cde import ClientStubManager
from repro.errors import NonExistentMethodError, StubError
from repro.rmitypes import INT, STRING
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


def _calculator_operations():
    return [
        OperationSpec("add", (("a", INT), ("b", INT)), INT, body=lambda self, a, b: a + b),
        OperationSpec("greet", (("name", STRING),), STRING, body=lambda self, name: f"hi {name}"),
    ]


class TestBindingBasics:
    def test_connect_fetches_interface(self, calculator_testbed):
        _testbed, _calculator, _instance, binding = calculator_testbed
        assert binding.service_name == "Calculator"
        assert set(binding.description.operation_names()) == {"add", "greet"}
        assert binding.interface_version >= 1

    def test_invoke_known_operation(self, calculator_testbed):
        _testbed, _calculator, _instance, binding = calculator_testbed
        assert binding.invoke("add", 2, 3) == 5
        assert binding.invoke("greet", "kim") == "hello kim"
        assert binding.stats.successful_calls == 2

    def test_unknown_technology_rejected(self, calculator_testbed):
        testbed, _calculator, _instance, _binding = calculator_testbed
        with pytest.raises(StubError):
            from repro.core.cde.binding import DynamicClientBinding

            DynamicClientBinding(testbed.cde, "rmi", "http://server:8080/doc")

    def test_corba_binding_requires_ior_url(self, calculator_testbed):
        testbed, _calculator, _instance, _binding = calculator_testbed
        with pytest.raises(StubError):
            from repro.core.cde.binding import DynamicClientBinding

            DynamicClientBinding(testbed.cde, "corba", "http://server:8080/doc")

    def test_refresh_reports_interface_diff(self, calculator_testbed):
        testbed, calculator, _instance, binding = calculator_testbed
        calculator.add_method("square", (), INT, body=lambda self: 0, distributed=True)
        testbed.publish_now("Calculator")
        diff = binding.refresh()
        assert diff.added == ("square",)
        assert binding.description.has_operation("square")
        assert binding.stats.refreshes >= 2


class TestStaleCallHandling:
    """The client half of the §6 algorithm."""

    def test_stale_call_refreshes_view_and_reports_to_debugger(self, calculator_testbed):
        testbed, calculator, _instance, binding = calculator_testbed
        calculator.method("add").rename("sum")
        with pytest.raises(NonExistentMethodError):
            binding.invoke("add", 1, 2)
        # The view was refreshed to the forced publication.
        assert binding.description.has_operation("sum")
        assert not binding.description.has_operation("add")
        # The debugger shows the error with the interface diff.
        entry = testbed.cde.debugger.latest()
        assert entry is not None
        assert "add" in str(entry.exception)
        assert "sum" in entry.description

    def test_guarantee_record_satisfied(self, calculator_testbed):
        _testbed, calculator, _instance, binding = calculator_testbed
        calculator.method("add").rename("sum")
        with pytest.raises(NonExistentMethodError):
            binding.invoke("add", 1, 2)
        record = binding.guarantee_records[-1]
        assert record.satisfied
        assert record.client_version_after_refresh >= record.server_version
        assert "sum" in record.interface_diff.added

    def test_try_again_after_developer_adapts(self, calculator_testbed):
        """Figure 9: the developer inspects the error, fixes the call site,
        and re-executes via the debugger's 'try again'."""
        testbed, calculator, _instance, binding = calculator_testbed
        calculator.method("add").rename("sum")
        with pytest.raises(NonExistentMethodError):
            binding.invoke("add", 1, 2)
        entry = testbed.cde.debugger.latest()
        # The server developer renames the method back (the §6 corner case);
        # 'try again' then succeeds with the original call.
        calculator.method("sum").rename("add")
        testbed.publish_now("Calculator")
        assert testbed.cde.debugger.try_again(entry) == 3
        assert entry.resolved

    def test_naive_client_does_not_refresh(self, calculator_testbed):
        testbed, calculator, _instance, _binding = calculator_testbed
        naive = testbed.connect_soap_client("Calculator", reactive_updates=False)
        calculator.method("add").rename("sum")
        with pytest.raises(NonExistentMethodError):
            naive.invoke("add", 1, 2)
        # View not refreshed: the stale operation is still the one it knows.
        assert naive.description.has_operation("add")
        assert naive.guarantee_records == []

    def test_stale_faults_counted(self, calculator_testbed):
        _testbed, calculator, _instance, binding = calculator_testbed
        calculator.method("add").rename("sum")
        with pytest.raises(NonExistentMethodError):
            binding.invoke("add", 1, 2)
        assert binding.stats.stale_faults == 1


class TestClientStubManager:
    def test_stub_class_mirrors_interface(self, calculator_testbed):
        testbed, _calculator, _instance, binding = calculator_testbed
        manager = testbed.cde.create_stub_class(binding)
        assert set(manager.operation_names) == {"add", "greet"}
        stub = manager.new_stub_instance()
        assert stub.add(4, 5) == 9

    def test_stub_class_updates_on_refresh(self, calculator_testbed):
        testbed, calculator, _instance, binding = calculator_testbed
        manager = testbed.cde.create_stub_class(binding)
        stub = manager.new_stub_instance()
        calculator.add_method("square", (), INT, body=lambda self: 0, distributed=True)
        testbed.publish_now("Calculator")
        binding.refresh()
        assert "square" in manager.operation_names
        assert stub.square() == 0

    def test_stub_methods_removed_when_server_drops_them(self, calculator_testbed):
        testbed, calculator, _instance, binding = calculator_testbed
        manager = testbed.cde.create_stub_class(binding)
        calculator.remove_method("greet")
        testbed.publish_now("Calculator")
        binding.refresh()
        assert "greet" not in manager.operation_names

    def test_stub_signature_changes_propagate_to_live_instances(self, calculator_testbed):
        testbed, calculator, _instance, binding = calculator_testbed
        manager = testbed.cde.create_stub_class(binding)
        stub = manager.new_stub_instance()
        from repro.interface import Parameter

        method = calculator.method("add")
        method.set_parameters((Parameter("a", INT), Parameter("b", INT), Parameter("c", INT)))
        method.set_body(lambda self, a, b, c: a + b + c)
        testbed.publish_now("Calculator")
        binding.refresh()
        assert stub.add(1, 2, 3) == 6

    def test_automatic_update_on_stale_fault(self, calculator_testbed):
        """The binding refresh triggered by a stale fault also updates stubs."""
        testbed, calculator, _instance, binding = calculator_testbed
        manager = testbed.cde.create_stub_class(binding)
        calculator.method("add").rename("sum")
        with pytest.raises(NonExistentMethodError):
            binding.invoke("add", 1, 2)
        assert "sum" in manager.operation_names
        assert "add" not in manager.operation_names
        assert manager.updates_applied >= 2
