"""Tests for the DL Publisher: §5.6 stable-change detection and §5.7 recency."""

import pytest

from repro.core.sde.interface_server import InterfaceServer
from repro.core.sde.publisher import (
    STRATEGY_CHANGE_DRIVEN,
    STRATEGY_POLLING,
    STRATEGY_STABLE_TIMEOUT,
)
from repro.core.sde.wsdl_publisher import WsdlPublisher
from repro.core.sde.idl_publisher import IdlPublisher
from repro.corba.ior import IOR
from repro.errors import PublicationError
from repro.interface import Parameter
from repro.jpie import JPieEnvironment
from repro.rmitypes import INT
from repro.soap.wsdl import parse_wsdl


TIMEOUT = 2.0
GENERATION_COST = 0.5


@pytest.fixture
def world(network, scheduler):
    environment = JPieEnvironment()
    interface_server = InterfaceServer(network.host("server"), 8080)
    interface_server.start()
    dynamic_class = environment.create_class("Calculator")
    publisher = WsdlPublisher(
        dynamic_class=dynamic_class,
        interface_server=interface_server,
        scheduler=scheduler,
        namespace="urn:sde:Calculator",
        endpoint_url="http://server:8070/sde/Calculator",
        timeout=TIMEOUT,
        generation_cost=GENERATION_COST,
    )
    environment.undo_stack.add_listener(publisher.on_change_record)
    return environment, dynamic_class, publisher, interface_server, scheduler


def add_operation(dynamic_class, name="add"):
    dynamic_class.add_method(
        name,
        (Parameter("a", INT), Parameter("b", INT)),
        INT,
        body=lambda self, a, b: a + b,
        distributed=True,
    )


class TestMinimalPublication:
    def test_minimal_document_published_immediately(self, world):
        _env, _cls, publisher, interface_server, _scheduler = world
        publisher.publish_minimal()
        document = interface_server.document(publisher.document_path)
        assert document is not None
        parsed = parse_wsdl(document)
        assert parsed.operations == ()
        assert parsed.endpoint_url == "http://server:8070/sde/Calculator"
        assert publisher.version == 1


class TestStableTimeoutStrategy:
    def test_single_change_published_after_timeout_and_generation(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class)
        assert publisher.version == 0
        scheduler.run_for(TIMEOUT - 0.1)
        assert publisher.version == 0  # still counting down
        scheduler.run_for(0.1 + GENERATION_COST + 0.01)
        assert publisher.version == 1
        assert publisher.is_published_current()

    def test_rapid_changes_coalesce_into_one_publication(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        for index in range(5):
            add_operation(dynamic_class, f"operation_{index}")
            scheduler.run_for(0.2)
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        assert publisher.stats.publications == 1
        assert publisher.stats.changes_observed == 5
        assert publisher.stats.timer_resets == 4

    def test_body_changes_do_not_trigger_publication(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class)
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        publications_before = publisher.stats.publications
        dynamic_class.method("add").set_body(lambda self, a, b: a * b)
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        assert publisher.stats.publications == publications_before

    def test_changes_to_other_classes_ignored(self, world):
        environment, _cls, publisher, _server, scheduler = world
        other = environment.create_class("Other")
        add_operation(other)
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        assert publisher.stats.changes_observed == 0
        assert publisher.stats.publications == 0

    def test_versions_increase_monotonically(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        publisher.publish_minimal()
        add_operation(dynamic_class, "first")
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        add_operation(dynamic_class, "second")
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        versions = [record.version for record in publisher.publication_history]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_redundant_generation_does_not_republish(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class)
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        publisher.force_publish()
        scheduler.run_for(GENERATION_COST + 0.1)
        assert publisher.stats.publications == 1
        assert publisher.stats.redundant_generations == 1

    def test_timer_expiry_during_generation_queues_another(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class, "first")
        scheduler.run_for(TIMEOUT + 0.05)  # generation for "first" starts
        assert publisher.generation_in_progress
        add_operation(dynamic_class, "second")
        # Make the stability timer expire before the ongoing generation ends.
        publisher.timer.force_expire()
        scheduler.run_until_idle()
        assert publisher.stats.generations == 2
        published_names = publisher.published_description.operation_names()
        assert published_names == ("first", "second")


class TestForcedPublication:
    def test_force_publish_bypasses_timer(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class)
        publisher.force_publish()
        scheduler.run_for(GENERATION_COST + 0.01)
        assert publisher.version == 1
        assert publisher.stats.forced_publications == 1
        assert publisher.publication_history[-1].forced

    def test_timeout_tunable(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        publisher.timeout = 0.5
        add_operation(dynamic_class)
        scheduler.run_for(0.5 + GENERATION_COST + 0.01)
        assert publisher.version == 1

    def test_invalid_timeout_rejected(self, world):
        _env, _cls, publisher, _server, _scheduler = world
        with pytest.raises(ValueError):
            publisher.timeout = 0


class TestEnsureCurrent:
    """The §5.7 case analysis."""

    def test_idle_and_current_calls_back_immediately(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class)
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        called = []
        publisher.ensure_current(lambda: called.append(scheduler.now))
        assert called == [scheduler.now]
        assert publisher.stats.stale_call_publications == 0

    def test_timer_running_forces_immediate_generation(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class)  # timer starts
        called = []
        publisher.ensure_current(lambda: called.append(scheduler.now))
        assert called == []  # must wait for the forced generation
        scheduler.run_for(GENERATION_COST + 0.01)
        assert len(called) == 1
        assert publisher.is_published_current()
        assert not publisher.timer.running

    def test_generation_in_progress_waits_for_completion(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class)
        scheduler.run_for(TIMEOUT + 0.05)
        assert publisher.generation_in_progress
        called = []
        publisher.ensure_current(lambda: called.append(scheduler.now))
        assert called == []
        scheduler.run_until_idle()
        assert len(called) == 1
        assert publisher.is_published_current()

    def test_generation_and_timer_running_waits_for_two_generations(self, world):
        _env, dynamic_class, publisher, _server, scheduler = world
        add_operation(dynamic_class, "first")
        scheduler.run_for(TIMEOUT + 0.05)  # generation running for "first"
        add_operation(dynamic_class, "second")  # timer running again
        assert publisher.generation_in_progress and publisher.timer.running
        called = []
        publisher.ensure_current(lambda: called.append(publisher.published_description.operation_names()))
        scheduler.run_until_idle()
        assert called == [("first", "second")]
        assert publisher.stats.generations == 2


class TestAlternativeStrategies:
    def _build(self, network, scheduler, strategy, poll_interval=1.0):
        environment = JPieEnvironment()
        interface_server = InterfaceServer(network.host("server"), 8081)
        interface_server.start()
        dynamic_class = environment.create_class("Svc")
        publisher = WsdlPublisher(
            dynamic_class=dynamic_class,
            interface_server=interface_server,
            scheduler=scheduler,
            namespace="urn:svc",
            endpoint_url="http://server:1/ep",
            timeout=TIMEOUT,
            generation_cost=GENERATION_COST,
            strategy=strategy,
            poll_interval=poll_interval,
        )
        publisher.start()
        environment.undo_stack.add_listener(publisher.on_change_record)
        return dynamic_class, publisher

    def test_change_driven_publishes_every_interface_change(self, network, scheduler):
        dynamic_class, publisher = self._build(network, scheduler, STRATEGY_CHANGE_DRIVEN)
        for index in range(3):
            add_operation(dynamic_class, f"operation_{index}")
            scheduler.run_for(GENERATION_COST + 0.05)
        assert publisher.stats.publications == 3

    def test_polling_publishes_on_next_tick(self, network, scheduler):
        dynamic_class, publisher = self._build(network, scheduler, STRATEGY_POLLING, poll_interval=1.0)
        add_operation(dynamic_class)
        scheduler.run_for(0.5)
        assert publisher.stats.publications == 0
        scheduler.run_for(1.0 + GENERATION_COST)
        assert publisher.stats.publications == 1

    def test_polling_does_not_regenerate_when_current(self, network, scheduler):
        dynamic_class, publisher = self._build(network, scheduler, STRATEGY_POLLING, poll_interval=1.0)
        add_operation(dynamic_class)
        scheduler.run_for(5.0)
        generations = publisher.stats.generations
        scheduler.run_for(5.0)
        assert publisher.stats.generations == generations

    def test_unknown_strategy_rejected(self, network, scheduler):
        with pytest.raises(PublicationError):
            self._build(network, scheduler, "guess")


class TestIdlPublisher:
    def test_idl_document_and_ior_published(self, network, scheduler):
        environment = JPieEnvironment()
        interface_server = InterfaceServer(network.host("server"), 8082)
        interface_server.start()
        dynamic_class = environment.create_class("Mailer")
        publisher = IdlPublisher(
            dynamic_class=dynamic_class,
            interface_server=interface_server,
            scheduler=scheduler,
            namespace="urn:mail",
            endpoint_url="iiop://server:9000/Mailer",
            timeout=TIMEOUT,
            generation_cost=GENERATION_COST,
        )
        environment.undo_stack.add_listener(publisher.on_change_record)
        publisher.publish_minimal()
        publisher.publish_ior(IOR("IDL:repro/Mailer:1.0", "server", 9000, "Mailer"))
        assert interface_server.document(publisher.document_path).startswith("// CORBA-IDL")
        assert interface_server.document(publisher.ior_path).startswith("IOR:")
        add_operation(dynamic_class, "send")
        scheduler.run_for(TIMEOUT + GENERATION_COST + 0.1)
        assert "send(" in interface_server.document(publisher.document_path)
