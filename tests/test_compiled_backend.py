"""Backend selection (:mod:`repro._backend`) and compiled-vs-pure equivalence.

The compiled core is an optional build artifact, so these tests must be
meaningful in both worlds:

* selection rules are exercised in subprocesses (``REPRO_COMPILED`` is read
  once at first import, so the decision cannot be re-made in-process);
* the equivalence test runs the full 4×256 fault-drill scenario under the
  *selected* backend and under ``REPRO_COMPILED=0`` (forced pure) and
  asserts byte-identical ClusterReport fingerprints.  With the compiled
  core built (the CI compiled job) that is compiled-vs-pure; without it,
  the same test still pins cross-process determinism of the drill.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro._backend import backend_name, compiled_available

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")


def _run_python(code: str, compiled_env: str | None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    if compiled_env is None:
        env.pop("REPRO_COMPILED", None)
    else:
        env["REPRO_COMPILED"] = compiled_env
    return subprocess.run(
        [sys.executable, "-c", code],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


class TestBackendSelection:
    def test_escape_hatch_forces_pure(self):
        probe = _run_python(
            "from repro._backend import backend_name; print(backend_name())", "0"
        )
        assert probe.returncode == 0
        assert probe.stdout.strip() == "pure"

    def test_auto_matches_availability(self):
        expected = "compiled" if compiled_available() else "pure"
        probe = _run_python(
            "from repro._backend import backend_name; print(backend_name())", None
        )
        assert probe.returncode == 0
        assert probe.stdout.strip() == expected

    @pytest.mark.skipif(
        compiled_available(), reason="compiled core is built; =1 would succeed"
    )
    def test_required_compiled_fails_loudly_when_missing(self):
        probe = _run_python("import repro.sim.scheduler", "1")
        assert probe.returncode != 0
        assert "REPRO_COMPILED=1" in probe.stderr
        assert "build_compiled_core" in probe.stderr

    def test_shims_reexport_selected_impl(self):
        import repro.net.simnet as simnet
        import repro.sim.scheduler as scheduler

        if backend_name() == "compiled":
            assert scheduler.Scheduler.__module__.startswith("repro._ccore")
            assert simnet.Network.__module__.startswith("repro._ccore")
        else:
            assert scheduler.Scheduler.__module__ == "repro.sim._scheduler_impl"
            assert simnet.Network.__module__ == "repro.net._simnet_impl"
        assert simnet.Message is not None and scheduler.Event is not None

    def test_unknown_impl_stem_rejected(self):
        from repro._backend import load_impl

        with pytest.raises(ImportError):
            load_impl("_nonexistent_impl")


#: Runs the acceptance drill and prints a deterministic fingerprint of the
#: ClusterReport.  ``repr`` keeps float fields byte-exact through JSON.
_FINGERPRINT_SCRIPT = """
import json, sys
from repro._backend import backend_name
from repro.cluster.presets import fault_drill_scenario

report = fault_drill_scenario(256).run()
fingerprint = {
    "events_dispatched": report.events_dispatched,
    "duration": repr(report.duration),
    "all_rtts": repr(report.all_rtts),
    "replica_sequences": [c.replica_sequence for c in report.clients],
    "total_calls": report.total_calls,
    "total_successes": report.total_successes,
    "total_failed_attempts": report.total_failed_attempts,
    "total_retried_calls": report.total_retried_calls,
    "total_abandoned_calls": report.total_abandoned_calls,
    "total_recency_violations": report.total_recency_violations,
    "node_downtime": [(n.name, repr(n.downtime_s), n.outages) for n in report.nodes],
}
json.dump({"backend": backend_name(), "fingerprint": fingerprint}, sys.stdout)
"""


class TestCompiledVsPureEquivalence:
    def test_fault_drill_reports_are_byte_identical(self):
        """The 4×256 fault drill produces identical ClusterReports under the
        selected backend and the forced-pure backend."""
        selected = _run_python(_FINGERPRINT_SCRIPT, None)
        assert selected.returncode == 0, selected.stderr
        pure = _run_python(_FINGERPRINT_SCRIPT, "0")
        assert pure.returncode == 0, pure.stderr

        selected_payload = json.loads(selected.stdout)
        pure_payload = json.loads(pure.stdout)
        assert pure_payload["backend"] == "pure"
        if compiled_available():
            assert selected_payload["backend"] == "compiled"
        assert selected_payload["fingerprint"] == pure_payload["fingerprint"]
