"""Tests for CDR marshalling, GIOP framing and IORs."""

import pytest

from repro.corba.cdr import (
    CdrInputStream,
    CdrOutputStream,
    marshal_values,
    unmarshal_values,
)
from repro.corba.giop import (
    MessageType,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    parse_message,
)
from repro.corba.ior import IOR
from repro.errors import GiopError, IorError, MarshalError


class TestCdrPrimitives:
    def test_long_roundtrip(self):
        out = CdrOutputStream()
        out.write_long(-123456789)
        assert CdrInputStream(out.getvalue()).read_long() == -123456789

    def test_long_out_of_range(self):
        with pytest.raises(MarshalError):
            CdrOutputStream().write_long(2 ** 70)

    def test_ulong_roundtrip_and_range(self):
        out = CdrOutputStream()
        out.write_ulong(4_000_000_000)
        assert CdrInputStream(out.getvalue()).read_ulong() == 4_000_000_000
        with pytest.raises(MarshalError):
            CdrOutputStream().write_ulong(-1)

    def test_double_roundtrip(self):
        out = CdrOutputStream()
        out.write_double(3.141592653589793)
        assert CdrInputStream(out.getvalue()).read_double() == pytest.approx(3.141592653589793)

    def test_string_roundtrip_including_unicode(self):
        out = CdrOutputStream()
        out.write_string("héllo wörld ✓")
        assert CdrInputStream(out.getvalue()).read_string() == "héllo wörld ✓"

    def test_bytes_roundtrip(self):
        out = CdrOutputStream()
        out.write_bytes(b"\x00\x01\xff")
        assert CdrInputStream(out.getvalue()).read_bytes() == b"\x00\x01\xff"

    def test_truncated_stream_rejected(self):
        out = CdrOutputStream()
        out.write_string("hello")
        data = out.getvalue()[:-2]
        with pytest.raises(MarshalError):
            CdrInputStream(data).read_string()


class TestCdrValues:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 42, -7, 3.5, "", "text",
        [1, 2, 3], ["a", ["b", "c"]],
        {"x": 1, "y": [True, None]},
        [{"street": "Main", "number": 3}],
    ])
    def test_tagged_value_roundtrip(self, value):
        out = CdrOutputStream()
        out.write_value(value)
        assert CdrInputStream(out.getvalue()).read_value() == value

    def test_unsupported_value_rejected(self):
        with pytest.raises(MarshalError):
            CdrOutputStream().write_value(object())

    def test_non_string_struct_keys_rejected(self):
        with pytest.raises(MarshalError):
            CdrOutputStream().write_value({1: "x"})

    def test_marshal_values_roundtrip(self):
        values = (1, "two", [3.0], {"four": True})
        assert unmarshal_values(marshal_values(values)) == list(values)

    def test_trailing_bytes_rejected(self):
        data = marshal_values((1,)) + b"\x00"
        with pytest.raises(MarshalError):
            unmarshal_values(data)

    def test_unknown_tag_rejected(self):
        with pytest.raises(MarshalError):
            CdrInputStream(b"\x99").read_value()


class TestGiop:
    def test_request_roundtrip(self):
        request = RequestMessage(7, "Calculator", "add", marshal_values((2, 3)))
        parsed = parse_message(request.to_bytes())
        assert isinstance(parsed, RequestMessage)
        assert parsed.request_id == 7
        assert parsed.object_key == "Calculator"
        assert parsed.operation == "add"
        assert unmarshal_values(parsed.arguments_cdr) == [2, 3]

    def test_reply_roundtrip(self):
        reply = ReplyMessage(7, ReplyStatus.NO_EXCEPTION, marshal_values((5,)))
        parsed = parse_message(reply.to_bytes())
        assert isinstance(parsed, ReplyMessage)
        assert parsed.status == ReplyStatus.NO_EXCEPTION
        assert unmarshal_values(parsed.body_cdr) == [5]

    def test_exception_reply_roundtrip(self):
        reply = ReplyMessage(9, ReplyStatus.SYSTEM_EXCEPTION, b"", "BAD_OPERATION", "no such op")
        parsed = parse_message(reply.to_bytes())
        assert parsed.status == ReplyStatus.SYSTEM_EXCEPTION
        assert parsed.exception_type == "BAD_OPERATION"
        assert parsed.exception_detail == "no such op"

    def test_bad_magic_rejected(self):
        with pytest.raises(GiopError):
            parse_message(b"HTTP" + b"\x00" * 20)

    def test_truncated_message_rejected(self):
        with pytest.raises(GiopError):
            parse_message(b"GIOP")

    def test_size_mismatch_rejected(self):
        data = bytearray(RequestMessage(1, "k", "op", b"").to_bytes())
        data[8:12] = (999).to_bytes(4, "big")
        with pytest.raises(GiopError):
            parse_message(bytes(data))

    def test_wire_format_starts_with_magic_and_type(self):
        data = RequestMessage(1, "k", "op", b"").to_bytes()
        assert data[:4] == b"GIOP"
        assert data[7] == MessageType.REQUEST


class TestIor:
    def test_stringify_roundtrip(self):
        ior = IOR("IDL:repro/Calculator:1.0", "server", 9000, "Calculator")
        parsed = IOR.from_string(ior.stringify())
        assert parsed == ior

    def test_stringified_form_has_prefix(self):
        ior = IOR("IDL:x:1.0", "host", 1234, "key")
        assert ior.stringify().startswith("IOR:")
        assert str(ior) == ior.stringify()

    def test_whitespace_tolerated_when_parsing(self):
        ior = IOR("IDL:x:1.0", "host", 1234, "key")
        assert IOR.from_string("  " + ior.stringify() + "\n") == ior

    @pytest.mark.parametrize("bad", ["", "IOR:zzzz", "NOPE:abcd", "IOR:00"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(IorError):
            IOR.from_string(bad)

    def test_invalid_fields_rejected(self):
        with pytest.raises(IorError):
            IOR("IDL:x:1.0", "", 1234, "key")
        with pytest.raises(IorError):
            IOR("IDL:x:1.0", "host", 99999, "key")
        with pytest.raises(IorError):
            IOR("IDL:x:1.0", "host", 1234, "")
