"""Tests for the static CORBA server/client baseline (the "OpenORB" stack)."""

import pytest

from repro.corba import CorbaServiceDefinition, StaticCorbaClient, StaticCorbaServer
from repro.errors import CorbaError, CorbaUserException
from repro.interface import OperationSignature, Parameter
from repro.net.latency import era_2004_cost_model
from repro.rmitypes import DOUBLE, FieldDef, INT, STRING, StructType

POINT = StructType("Point", (FieldDef("x", DOUBLE), FieldDef("y", DOUBLE)))


def build_definition():
    definition = CorbaServiceDefinition("Calculator", "urn:calc")
    definition.structs.append(POINT)
    definition.add_operation(
        OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT),
        lambda a, b: a + b,
    )
    definition.add_operation(
        OperationSignature("norm", (Parameter("p", POINT),), DOUBLE),
        lambda p: (p["x"] ** 2 + p["y"] ** 2) ** 0.5,
    )
    definition.add_operation(
        OperationSignature("reject", (Parameter("why", STRING),), STRING),
        lambda why: (_ for _ in ()).throw(CorbaUserException("Rejected", why)),
    )
    return definition


class TestDeployment:
    def test_duplicate_operation_rejected(self):
        definition = build_definition()
        with pytest.raises(CorbaError):
            definition.add_operation(OperationSignature("add", (), INT), lambda: 0)

    def test_idl_and_ior_available(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        server.start()
        assert "interface Calculator" in server.idl_document
        assert server.ior.object_key == "Calculator"
        assert server.ior.port == 9000

    def test_http_publication_requires_port(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        with pytest.raises(CorbaError):
            _ = server.idl_url


class TestClientServerRoundTrips:
    def test_direct_connect_and_call(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        server.start()
        client = StaticCorbaClient(network.host("client"))
        stub = client.connect(server.idl_document, server.ior)
        assert stub.add(2, 3) == 5
        assert server.calls_served == 1

    def test_connect_with_stringified_ior(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        server.start()
        client = StaticCorbaClient(network.host("client"))
        stub = client.connect(server.idl_document, server.ior.stringify())
        assert stub.add(1, 1) == 2

    def test_connect_via_http(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition(), http_port=8085)
        server.start()
        client = StaticCorbaClient(network.host("client"))
        stub = client.connect_via_http(server.idl_url, server.ior_url)
        assert stub.norm({"x": 3.0, "y": 4.0}) == pytest.approx(5.0)

    def test_struct_argument_roundtrip(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        server.start()
        client = StaticCorbaClient(network.host("client"))
        stub = client.connect(server.idl_document, server.ior)
        assert stub.norm({"x": 6.0, "y": 8.0}) == pytest.approx(10.0)

    def test_user_exception(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        server.start()
        client = StaticCorbaClient(network.host("client"))
        client.connect(server.idl_document, server.ior)
        with pytest.raises(CorbaUserException) as excinfo:
            client.invoke("reject", "bad input")
        assert excinfo.value.type_name == "Rejected"

    def test_stub_arity_and_type_checks(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        server.start()
        client = StaticCorbaClient(network.host("client"))
        stub = client.connect(server.idl_document, server.ior)
        with pytest.raises(CorbaError):
            stub.add(1)
        with pytest.raises(Exception):
            stub.add("one", 2)

    def test_unknown_operation_rejected_client_side(self, network, scheduler):
        server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        server.start()
        client = StaticCorbaClient(network.host("client"))
        client.connect(server.idl_document, server.ior)
        with pytest.raises(CorbaError):
            client.invoke("subtract", 1, 2)

    def test_call_before_connect_rejected(self, network, scheduler):
        client = StaticCorbaClient(network.host("client"))
        with pytest.raises(CorbaError):
            client.invoke("add", 1, 2)

    def test_cost_model_increases_rtt(self, network, scheduler):
        cost = era_2004_cost_model()
        fast_server = StaticCorbaServer(network.host("server"), 9000, build_definition())
        fast_server.start()
        client = StaticCorbaClient(network.host("client"))
        stub = client.connect(fast_server.idl_document, fast_server.ior)
        start = scheduler.now
        stub.add(1, 2)
        fast_rtt = scheduler.now - start
        fast_server.stop()

        slow_server = StaticCorbaServer(network.host("server"), 9001, build_definition(), cost_model=cost)
        slow_server.start()
        slow_client = StaticCorbaClient(network.host("client"), cost_model=cost)
        slow_stub = slow_client.connect(slow_server.idl_document, slow_server.ior)
        start = scheduler.now
        slow_stub.add(1, 2)
        assert scheduler.now - start > fast_rtt
