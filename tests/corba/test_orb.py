"""Tests for the ORB core, POA, servants, DSI and DII."""

import pytest

from repro.corba.dii import DiiRequest, create_request
from repro.corba.dsi import DynamicServant, ServerRequest
from repro.corba.orb import ClientOrb, DeferredResult, ServerOrb
from repro.corba.poa import PortableObjectAdapter
from repro.corba.servant import StaticServant
from repro.errors import CorbaError, CorbaSystemException, CorbaUserException
from repro.interface import OperationSignature, Parameter
from repro.rmitypes import INT, STRING


def build_static_world(network):
    poa = PortableObjectAdapter()
    servant = StaticServant("Calculator")
    servant.register(
        OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT),
        lambda a, b: a + b,
    )
    servant.register(
        OperationSignature("fail", (Parameter("reason", STRING),), STRING),
        lambda reason: (_ for _ in ()).throw(CorbaUserException("MailError", reason)),
    )
    servant.register(
        OperationSignature("crash", (), STRING),
        lambda: (_ for _ in ()).throw(RuntimeError("unexpected")),
    )
    poa.activate_object("Calculator", servant)
    orb = ServerOrb(network.host("server"), 9000, poa=poa)
    orb.start()
    client_orb = ClientOrb(network.host("client"))
    return orb, client_orb, servant


class TestPoa:
    def test_activate_and_lookup(self):
        poa = PortableObjectAdapter()
        servant = StaticServant("X")
        poa.activate_object("X", servant)
        assert poa.servant_for("X") is servant
        assert poa.active_keys == ("X",)

    def test_duplicate_activation_rejected(self):
        poa = PortableObjectAdapter()
        poa.activate_object("X", StaticServant("X"))
        with pytest.raises(CorbaSystemException):
            poa.activate_object("X", StaticServant("X"))

    def test_unknown_key_raises_object_not_exist(self):
        with pytest.raises(CorbaSystemException) as excinfo:
            PortableObjectAdapter().servant_for("ghost")
        assert excinfo.value.name == "OBJECT_NOT_EXIST"

    def test_replace_servant(self):
        poa = PortableObjectAdapter()
        poa.activate_object("X", StaticServant("X"))
        replacement = StaticServant("X2")
        poa.replace_servant("X", replacement)
        assert poa.servant_for("X") is replacement

    def test_deactivate(self):
        poa = PortableObjectAdapter()
        poa.activate_object("X", StaticServant("X"))
        poa.deactivate_object("X")
        with pytest.raises(CorbaSystemException):
            poa.servant_for("X")


class TestStaticServant:
    def test_invoke(self):
        servant = StaticServant("Calc")
        servant.register(OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT), lambda a, b: a + b)
        assert servant.invoke("add", [2, 3]) == 5
        assert servant.operation_names() == ("add",)

    def test_unknown_operation(self):
        with pytest.raises(CorbaSystemException) as excinfo:
            StaticServant("Calc").invoke("nope", [])
        assert excinfo.value.name == "BAD_OPERATION"

    def test_wrong_arity(self):
        servant = StaticServant("Calc")
        servant.register(OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT), lambda a, b: a + b)
        with pytest.raises(CorbaSystemException) as excinfo:
            servant.invoke("add", [1])
        assert excinfo.value.name == "BAD_PARAM"

    def test_duplicate_registration_rejected(self):
        servant = StaticServant("Calc")
        signature = OperationSignature("op", (), INT)
        servant.register(signature, lambda: 1)
        with pytest.raises(CorbaSystemException):
            servant.register(signature, lambda: 2)


class TestRemoteInvocation:
    def test_successful_call(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        assert reference.invoke("add", 2, 3) == 5
        assert orb.requests_handled == 1

    def test_string_to_object_roundtrip(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        stringified = orb.object_reference("Calculator").stringify()
        reference = client_orb.string_to_object(stringified)
        assert reference.invoke("add", 10, 20) == 30

    def test_user_exception_propagates(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        with pytest.raises(CorbaUserException) as excinfo:
            reference.invoke("fail", "mailbox full")
        assert excinfo.value.type_name == "MailError"
        assert "mailbox full" in excinfo.value.message
        assert orb.user_exceptions_sent == 1

    def test_unexpected_exception_becomes_system_exception(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        with pytest.raises(CorbaSystemException) as excinfo:
            reference.invoke("crash")
        assert excinfo.value.name == "UNKNOWN"

    def test_unknown_operation_is_bad_operation(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        with pytest.raises(CorbaSystemException) as excinfo:
            reference.invoke("nonexistent")
        assert excinfo.value.name == "BAD_OPERATION"

    def test_unknown_object_key(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        ior = orb.object_reference("Calculator")
        from repro.corba.ior import IOR

        wrong = IOR(ior.type_id, ior.host, ior.port, "Ghost")
        with pytest.raises(CorbaSystemException) as excinfo:
            client_orb.object_for(wrong).invoke("add", 1, 2)
        assert excinfo.value.name == "OBJECT_NOT_EXIST"

    def test_stopped_orb_unreachable(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        orb.stop()
        with pytest.raises(Exception):
            reference.invoke("add", 1, 2)

    def test_sequential_calls_have_distinct_request_ids(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        assert [reference.invoke("add", i, i) for i in range(3)] == [0, 2, 4]
        assert client_orb.calls_made == 3


class TestDsi:
    def test_dynamic_servant_dispatch(self, network, scheduler):
        seen = []

        def handler(request: ServerRequest):
            seen.append((request.operation, tuple(request.arguments)))
            request.set_result(f"handled {request.operation}")

        poa = PortableObjectAdapter()
        poa.activate_object("Dyn", DynamicServant("Dyn", handler))
        orb = ServerOrb(network.host("server"), 9000, poa=poa)
        orb.start()
        client_orb = ClientOrb(network.host("client"))
        reference = client_orb.object_for(orb.object_reference("Dyn"))
        assert reference.invoke("anything", 1, "two") == "handled anything"
        assert seen == [("anything", (1, "two"))]

    def test_dynamic_servant_exception(self, network, scheduler):
        def handler(request: ServerRequest):
            request.set_exception(CorbaUserException("Nope", "not today"))

        poa = PortableObjectAdapter()
        poa.activate_object("Dyn", DynamicServant("Dyn", handler))
        orb = ServerOrb(network.host("server"), 9000, poa=poa)
        orb.start()
        client_orb = ClientOrb(network.host("client"))
        with pytest.raises(CorbaUserException):
            client_orb.object_for(orb.object_reference("Dyn")).invoke("x")

    def test_handler_must_complete_request(self):
        request = ServerRequest("op", [])
        with pytest.raises(CorbaSystemException):
            request.outcome()

    def test_deferred_result_releases_reply_later(self, network, scheduler):
        deferred_holder = []

        def handler(request: ServerRequest):
            deferred = DeferredResult()
            deferred_holder.append(deferred)
            request.set_result(deferred)

        poa = PortableObjectAdapter()
        poa.activate_object("Dyn", DynamicServant("Dyn", handler))
        orb = ServerOrb(network.host("server"), 9000, poa=poa)
        orb.start()
        scheduler.schedule(1.0, lambda: deferred_holder[0].complete("late result"))
        client_orb = ClientOrb(network.host("client"))
        result = client_orb.object_for(orb.object_reference("Dyn")).invoke("slow")
        assert result == "late result"
        assert scheduler.now >= 1.0


class TestDii:
    def test_create_request_and_invoke(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        request = create_request(reference, "add", 4).add_argument(5)
        assert request.invoke() == 9
        assert request.result == 9

    def test_double_invoke_rejected(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        request = create_request(reference, "add", 1, 2)
        request.invoke()
        with pytest.raises(CorbaError):
            request.invoke()
        with pytest.raises(CorbaError):
            request.add_argument(3)

    def test_result_before_invoke_rejected(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        request = DiiRequest(reference, "add", [1, 2])
        with pytest.raises(CorbaError):
            _ = request.result


class TestConnectionRecovery:
    def test_invoke_recovers_after_server_restart(self, network, scheduler):
        """A failed call (dead server) resets the client connection, so the
        next call after a restart correlates correctly instead of matching
        the dead call's stale FIFO expectation."""
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        assert reference.invoke("add", 1, 2) == 3

        orb.stop()
        with pytest.raises(Exception):
            reference.invoke("add", 3, 4)

        orb.start()
        assert reference.invoke("add", 3, 4) == 7

    def test_user_exception_keeps_connection_usable(self, network, scheduler):
        orb, client_orb, _servant = build_static_world(network)
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        with pytest.raises(CorbaUserException):
            reference.invoke("fail", "nope")
        assert reference.invoke("add", 2, 2) == 4

    def test_unmarshallable_result_becomes_system_exception(self, network, scheduler):
        """A servant result the CDR layer cannot encode still yields a GIOP
        reply (and leaves the connection usable) instead of hanging."""
        orb, client_orb, servant = build_static_world(network)
        servant.register(
            OperationSignature("weird", (), STRING),
            lambda: object(),
        )
        reference = client_orb.object_for(orb.object_reference("Calculator"))
        with pytest.raises(CorbaSystemException):
            reference.invoke("weird")
        assert reference.invoke("add", 1, 1) == 2
