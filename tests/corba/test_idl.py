"""Tests for CORBA-IDL generation and parsing."""

import pytest

from repro.corba.idl import generate_idl, idl_type_name, parse_idl, rmi_type_from_idl
from repro.corba.idl.generator import module_name_for_namespace
from repro.errors import IdlError
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.rmitypes import (
    ArrayType,
    BOOLEAN,
    DOUBLE,
    FieldDef,
    INT,
    STRING,
    StructType,
    TypeRegistry,
    VOID,
)

POINT = StructType("Point", (FieldDef("x", DOUBLE), FieldDef("y", DOUBLE)))


def build_description():
    operations = [
        OperationSignature("add", (Parameter("a", INT), Parameter("b", INT)), INT),
        OperationSignature("norm", (Parameter("p", POINT),), DOUBLE),
        OperationSignature("names", (), ArrayType(STRING)),
        OperationSignature("toggle", (Parameter("on", BOOLEAN),)),
    ]
    return InterfaceDescription(
        service_name="Calculator",
        namespace="urn:calc",
        endpoint_url="iiop://server:9000/Calculator",
        version=2,
    ).with_operations(operations, [POINT])


class TestTypeMapping:
    def test_primitive_mapping(self):
        assert idl_type_name(INT) == "long"
        assert idl_type_name(STRING) == "string"
        assert idl_type_name(VOID) == "void"

    def test_array_mapping(self):
        assert idl_type_name(ArrayType(INT)) == "sequence<long>"
        assert idl_type_name(ArrayType(ArrayType(STRING))) == "sequence<sequence<string>>"

    def test_struct_mapping(self):
        assert idl_type_name(POINT) == "Point"

    def test_reverse_mapping(self):
        assert rmi_type_from_idl("long") == INT
        assert rmi_type_from_idl("sequence<long>") == ArrayType(INT)
        assert rmi_type_from_idl("Point", TypeRegistry((POINT,))) == POINT

    def test_reverse_mapping_unknown_rejected(self):
        with pytest.raises(IdlError):
            rmi_type_from_idl("Mystery")

    def test_module_name_sanitisation(self):
        assert module_name_for_namespace("urn:calc") == "urn_calc"
        assert module_name_for_namespace("123 weird!") == "M_123_weird"
        assert module_name_for_namespace("!!!") == "Module"


class TestGeneration:
    def test_document_structure(self):
        document = generate_idl(build_description())
        assert "module urn_calc {" in document
        assert "interface Calculator {" in document
        assert "interface Point {" in document
        assert "long add(in long a, in long b);" in document
        assert "sequence<string> names();" in document
        assert "#pragma version 2" in document
        assert "#pragma endpoint iiop://server:9000/Calculator" in document

    def test_struct_attributes_rendered(self):
        document = generate_idl(build_description())
        assert "attribute double x;" in document
        assert "attribute double y;" in document

    def test_deterministic(self):
        assert generate_idl(build_description()) == generate_idl(build_description())


class TestParsing:
    def test_roundtrip_preserves_signature(self):
        description = build_description()
        parsed = parse_idl(generate_idl(description))
        assert parsed.same_signature(description)
        assert parsed.version == 2

    def test_roundtrip_preserves_struct_types(self):
        parsed = parse_idl(generate_idl(build_description()))
        point = parsed.type_registry().get("Point")
        assert point.field_names() == ("x", "y")
        assert parsed.operation("norm").parameters[0].param_type.type_name == "Point"

    def test_minimal_interface_roundtrip(self):
        minimal = InterfaceDescription.minimal("Svc", "urn:x", "iiop://server:1/Svc")
        parsed = parse_idl(generate_idl(minimal))
        assert parsed.operations == ()
        assert parsed.endpoint_url == "iiop://server:1/Svc"

    def test_hand_written_idl_parses(self):
        document = """
        // hand written
        #pragma namespace urn:mail
        module Mail {
          interface Message {
            attribute string subject;
            attribute string body;
          };
          interface MailService {
            boolean send(in Message m);
            sequence<string> inbox(in string user);
          };
        };
        """
        parsed = parse_idl(document)
        assert parsed.service_name == "MailService"
        assert parsed.namespace == "urn:mail"
        assert parsed.has_operation("send")
        assert parsed.operation("inbox").return_type == ArrayType(STRING)

    def test_empty_module_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("module Empty { };")

    def test_malformed_document_rejected(self):
        with pytest.raises(IdlError):
            parse_idl("interface NoModule { };")
        with pytest.raises(IdlError):
            parse_idl("module Broken { interface X { long op(; };")

    def test_comments_and_pragmas_ignored_by_tokenizer(self):
        document = generate_idl(build_description())
        commented = "// a leading comment\n" + document
        assert parse_idl(commented).same_signature(build_description())
