"""End-to-end rollout drills: rolling / canary / abort / crash-mid-rollout.

These are the acceptance tests of the interface-evolution subsystem: an
N-replica service upgrades wave-by-wave while a fleet keeps calling, and
the report proves the §6 recency guarantee, the stale-fault + rebind
contract for breaking upgrades ("never a silently wrong answer"), and the
byte-determinism of the whole drill.
"""

from __future__ import annotations

import pytest

from repro import (
    RetryPolicy,
    STRING,
    Scenario,
    abort_rollout,
    canary,
    crash,
    op,
    restart,
    rolling,
    upgrade,
)
from repro.core.sde import SDEConfig
from repro.errors import RolloutError
from repro.evolve import CLASS_BREAKING, CLASS_COMPATIBLE, InterfaceUpgrade

ECHO = op("echo", (("m", STRING),), STRING, body=lambda _self, m: m)
ECHO_V2 = op("echo_v2", (("m", STRING),), STRING, body=lambda _self, m: m + "!")
ECHO_LOUD = op("echo_loud", (("m", STRING),), STRING, body=lambda _self, m: m.upper())

BREAKING = upgrade(add=[ECHO_V2], remove=["echo"], successors={"echo": "echo_v2"})
COMPATIBLE = upgrade(add=[ECHO_LOUD])


def _scenario(name: str, replicas: int = 2, clients: int = 8, calls: int = 8, **client_kwargs):
    return (
        Scenario(name=name, sde_config=SDEConfig(generation_cost=0.02))
        .servers(2)
        .service("Echo", [ECHO], replicas=replicas)
        .clients(
            clients,
            service="Echo",
            calls=calls,
            arguments=("hi",),
            think_time=0.02,
            arrival=0.001,
            **client_kwargs,
        )
    )


class TestUpgradeSpec:
    def test_empty_upgrade_rejected(self):
        with pytest.raises(RolloutError):
            InterfaceUpgrade()

    def test_helper_normalises_inputs(self):
        change = upgrade(add=[ECHO_V2], remove=["echo"], successors={"echo": "echo_v2"})
        assert change.add == (ECHO_V2,)
        assert change.remove == ("echo",)
        assert change.successors == {"echo": "echo_v2"}


class TestCompatibleRolling:
    def test_zero_faults_zero_recency_violations(self):
        report = (
            _scenario("compat-roll")
            .at(0.03, rolling("Echo", COMPATIBLE, batch_size=1, drain=0.03))
            .run()
        )
        # A compatible upgrade is invisible to bound stubs: no stale faults,
        # no rebinds, every call succeeds, and — although the two replicas
        # deliberately publish divergent versions mid-rollout — the
        # version-aware routing keeps every client's observed version
        # monotone (the §6 guarantee for compatible upgrades).
        assert report.total_successes == report.total_calls == 64
        assert report.total_stale_faults == 0
        assert report.total_rebinds == 0
        assert report.total_recency_violations == 0
        (rollout,) = report.rollouts
        assert rollout.completed
        assert rollout.classification == CLASS_COMPATIBLE
        assert len(rollout.waves) == 2
        assert rollout.stale_fault_rate == 0.0
        # Mixed-version traffic is visible per replica during the window.
        assert set(report.service("Echo").calls_by_version) == {2, 3}

    def test_rolling_is_byte_deterministic(self):
        def build():
            return (
                _scenario("compat-roll-det")
                .at(0.03, rolling("Echo", COMPATIBLE, batch_size=1, drain=0.03))
            )

        first, second = build().run(), build().run()
        assert first.all_rtts == second.all_rtts
        assert first.events_dispatched == second.events_dispatched
        assert [c.replica_sequence for c in first.clients] == [
            c.replica_sequence for c in second.clients
        ]


class TestBreakingRolling:
    def test_stale_fault_plus_rebind_never_a_wrong_answer(self):
        report = (
            _scenario("break-roll")
            .at(0.03, rolling("Echo", BREAKING, batch_size=1, drain=0.03))
            .run()
        )
        # Every affected client observes the break as an explicit §5.7
        # stale fault followed by a rebind; nothing is silently wrong.
        assert report.total_stale_faults > 0
        assert report.total_rebinds == report.total_stale_faults
        assert report.total_other_faults == 0
        assert report.total_successes + report.total_stale_faults == report.total_calls
        assert report.total_recency_violations == 0
        (rollout,) = report.rollouts
        assert rollout.completed and not rollout.aborted
        assert rollout.classification == CLASS_BREAKING
        # The window counters cover the rollout only; clients that cross
        # after the last wave published rebind outside it.
        assert 0 < rollout.rebinds_during <= report.total_rebinds
        assert rollout.stale_faults_during == rollout.rebinds_during
        assert rollout.stale_fault_rate > 0.0
        # The waves' published-document deltas carry the typed changes.
        deltas = [delta for wave in rollout.waves for delta in wave.deltas]
        assert all(delta.removed == ("echo",) for delta in deltas)
        assert all(delta.added == ("echo_v2",) for delta in deltas)
        # Clients crossed to the successor operation and kept succeeding:
        # the final call of every client is a success.
        for client in report.clients:
            assert client.successes > 0

    def test_version_routing_shields_clients_until_the_last_wave(self):
        # With a long drain, calls keep landing while replicas diverge;
        # stale faults only appear once no compatible replica remains, so
        # each client faults at most once (its crossing).
        report = (
            _scenario("break-shield", replicas=2, clients=8, calls=10)
            .at(0.03, rolling("Echo", BREAKING, batch_size=1, drain=0.05))
            .run()
        )
        for client in report.clients:
            assert client.stale_faults <= 1
            assert client.rebinds == client.stale_faults

    def test_corba_path_identical_contract(self):
        report = (
            Scenario(name="break-corba", sde_config=SDEConfig(generation_cost=0.02))
            .servers(2)
            .service("Echo", [ECHO], technology="corba", replicas=2)
            .clients(
                8, service="Echo", calls=8, arguments=("hi",),
                think_time=0.02, arrival=0.001,
            )
            .at(0.03, rolling("Echo", BREAKING, batch_size=1, drain=0.03))
            .run()
        )
        assert report.total_stale_faults > 0
        assert report.total_rebinds == report.total_stale_faults
        assert report.total_other_faults == 0
        assert report.total_recency_violations == 0
        assert report.rollouts[0].classification == CLASS_BREAKING

    def test_deliberate_stale_probes_do_not_rebind(self):
        # stale_every probes call a never-existing operation; they must not
        # be mistaken for a breaking upgrade and trigger rebinds.
        report = (
            _scenario("probe-no-rebind", calls=6, stale_every=3)
            .at(0.03, rolling("Echo", COMPATIBLE, batch_size=1, drain=0.03))
            .run()
        )
        assert report.total_stale_faults > 0  # the probes
        assert report.total_rebinds == 0


class TestCanaryAndAbort:
    def test_canary_abort_rolls_back_and_clients_recover(self):
        def build():
            return (
                _scenario("canary-abort", replicas=4, clients=8, calls=12)
                .at(0.03, canary("Echo", BREAKING, fraction=0.25, promote_after=0.4))
                .at(0.10, abort_rollout("Echo"))
            )

        runtime = build().build()
        report = runtime.run()
        (rollout,) = report.rollouts
        assert rollout.aborted and rollout.rolled_back and rollout.completed
        assert len(rollout.waves) == 1  # the canary wave; promotion never ran
        assert rollout.waves[0].replicas == (0,)
        # Rollback restored the original interface on the canary replica
        # (one more publication: versions keep growing, never rewind).
        for replica in runtime.replicas("Echo"):
            description = replica.publisher.published_description
            assert description.operation_names() == ("echo",)
        assert runtime.replicas("Echo")[0].publisher.version > 3
        # Nothing was ever silently wrong, the §6 guarantee held, and every
        # client that crossed to the canary walked back after the rollback.
        assert report.total_other_faults == 0
        assert report.total_recency_violations == 0
        assert report.total_rebinds == report.total_stale_faults
        for client in report.clients:
            assert client.successes > 0

    def test_canary_without_abort_promotes(self):
        report = (
            _scenario("canary-promote", replicas=4, clients=8, calls=12)
            .at(0.03, canary("Echo", BREAKING, fraction=0.25, promote_after=0.1))
            .run()
        )
        (rollout,) = report.rollouts
        assert rollout.completed and not rollout.aborted
        assert len(rollout.waves) == 2
        assert rollout.waves[0].replicas == (0,)
        assert rollout.waves[1].replicas == (1, 2, 3)
        service = report.service("Echo")
        assert all(
            replica.interface_version >= 3 for replica in service.replicas
        )

    def test_abort_without_active_rollout_is_a_noop(self):
        report = _scenario("abort-noop").at(0.03, abort_rollout("Echo")).run()
        assert report.total_successes == report.total_calls
        assert report.rollouts == []

    def test_overlapping_rollouts_rejected(self):
        scenario = (
            _scenario("overlap")
            .at(0.03, rolling("Echo", BREAKING, drain=5.0))
            .at(0.04, rolling("Echo", COMPATIBLE))
        )
        with pytest.raises(RolloutError):
            scenario.run()


class TestCrashMidRollout:
    def _build(self):
        return (
            _scenario(
                "crash-roll",
                calls=10,
                retry=RetryPolicy(max_attempts=4, timeout=0.08, backoff=0.005),
            )
            .at(0.020, crash("server-1"))
            .at(0.030, rolling("Echo", BREAKING, batch_size=1, drain=0.03))
            .at(0.150, restart("server-1"))
        )

    def test_deterministic_resume_after_restart(self):
        runtime = self._build().build()
        report = runtime.run()
        (rollout,) = report.rollouts
        # The crashed replica's wave was deferred and resumed post-restart;
        # the rollout still completed and every replica ended upgraded.
        assert rollout.completed
        assert rollout.deferred_resumes == 1
        for replica in runtime.replicas("Echo"):
            assert replica.publisher.published_description.operation_names() == (
                "echo_v2",
            )
        # The full contract held across crash + rollout + failover.
        assert report.total_other_faults == 0
        assert report.total_recency_violations == 0
        assert report.total_abandoned_calls == 0
        assert report.total_rebinds > 0

    def test_crash_mid_rollout_is_byte_deterministic(self):
        first = self._build().run()
        second = self._build().run()
        assert first.all_rtts == second.all_rtts
        assert first.duration == second.duration
        assert first.events_dispatched == second.events_dispatched
        assert [c.replica_sequence for c in first.clients] == [
            c.replica_sequence for c in second.clients
        ]


class TestDeadlineCutRollout:
    def test_stale_controller_detaches_and_frees_the_service(self):
        # A deadline cuts the run before the rollout's first wave publishes:
        # the controller must not keep counting into the finished window's
        # report, and a later rollout on the service must be startable.
        runtime = (
            _scenario("deadline-cut", calls=20)
            .at(0.03, rolling("Echo", BREAKING, batch_size=1, drain=5.0))
            .build()
        )
        first = runtime.run(until=0.06)  # wave 0 in flight, wave 1 far away
        (cut,) = first.rollouts
        assert not cut.completed
        frozen = (cut.calls_during, cut.stale_faults_during, cut.rebinds_during)
        second = runtime.run(until=0.3)
        # The finished window's report was not mutated by the second run...
        assert (
            cut.calls_during,
            cut.stale_faults_during,
            cut.rebinds_during,
        ) == frozen
        # ...and the service is free again: a fresh rollout starts and runs.
        entry = runtime.registry.lookup("Echo")
        assert entry.active_rollout is None
        from repro.evolve import RolloutController

        controller = RolloutController(runtime, "Echo", COMPATIBLE).start()
        assert entry.active_rollout is controller


class TestVersionGraphWiring:
    def test_scenario_feeds_per_replica_version_graphs(self):
        runtime = (
            _scenario("graph-wire")
            .at(0.03, rolling("Echo", BREAKING, batch_size=1, drain=0.03))
            .build()
        )
        runtime.run()
        graph = runtime.registry.lookup("Echo").version_graph
        assert graph.service == "Echo"
        assert graph.replicas() == (0, 1)
        for replica_index in graph.replicas():
            # minimal (v1) -> operations (v2) -> breaking upgrade (v3).
            assert graph.versions(replica_index) == (1, 2, 3)
            edges = graph.edges(replica_index)
            assert edges[-1].classification == CLASS_BREAKING
            assert edges[-1].removed == ("echo",)
