"""Unit tests for the typed interface-diff engine and the version graph."""

from __future__ import annotations

import pytest

from repro.corba.idl import generate_idl
from repro.errors import EvolveError
from repro.evolve import (
    CHANGE_ADDED,
    CHANGE_REMOVED,
    CHANGE_SIGNATURE,
    CLASS_BREAKING,
    CLASS_COMPATIBLE,
    CLASS_IDENTICAL,
    VersionGraph,
    diff_descriptions,
    diff_documents,
    is_compatible,
    parse_description,
    register_description_parser,
)
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.rmitypes import FieldDef, INT, STRING, StructType, VOID
from repro.soap.wsdl import generate_wsdl


def _description(version: int, *operations: OperationSignature, structs=()) -> InterfaceDescription:
    return InterfaceDescription(
        service_name="Svc",
        namespace="urn:sde:Svc",
        operations=tuple(sorted(operations, key=lambda op: op.name)),
        structs=tuple(structs),
        version=version,
        endpoint_url="http://server:8070/rmi",
    )


ECHO = OperationSignature("echo", (Parameter("m", STRING),), STRING)
ECHO_V2 = OperationSignature("echo_v2", (Parameter("m", STRING),), STRING)
PING = OperationSignature("ping", (), INT)


class TestDiffDescriptions:
    def test_identical_interfaces_diff_empty(self):
        delta = diff_descriptions(_description(1, ECHO), _description(2, ECHO))
        assert delta.empty
        assert delta.compatible
        assert delta.classification == CLASS_IDENTICAL
        assert delta.old_version == 1 and delta.new_version == 2

    def test_added_operation_is_compatible(self):
        delta = diff_descriptions(_description(1, ECHO), _description(2, ECHO, PING))
        assert delta.added == ("ping",)
        assert not delta.removed and not delta.changed
        assert delta.classification == CLASS_COMPATIBLE
        assert [change.kind for change in delta.operations] == [CHANGE_ADDED]

    def test_removed_operation_is_breaking(self):
        delta = diff_descriptions(_description(1, ECHO, PING), _description(2, PING))
        assert delta.removed == ("echo",)
        assert delta.classification == CLASS_BREAKING
        (change,) = delta.breaking_changes
        assert change.kind == CHANGE_REMOVED
        assert change.old == ECHO and change.new is None

    def test_signature_change_is_breaking(self):
        changed = OperationSignature(
            "echo", (Parameter("m", STRING), Parameter("times", INT)), STRING
        )
        delta = diff_descriptions(_description(1, ECHO), _description(2, changed))
        assert delta.changed == ("echo",)
        assert delta.classification == CLASS_BREAKING
        (change,) = delta.operations
        assert change.kind == CHANGE_SIGNATURE
        assert change.old == ECHO and change.new == changed
        assert "->" in change.describe()

    def test_return_type_change_is_a_signature_change(self):
        changed = OperationSignature("ping", (), VOID)
        delta = diff_descriptions(_description(1, PING), _description(2, changed))
        assert delta.changed == ("ping",)
        assert not delta.compatible

    def test_rename_reads_as_remove_plus_add(self):
        delta = diff_descriptions(_description(1, ECHO), _description(2, ECHO_V2))
        assert delta.removed == ("echo",)
        assert delta.added == ("echo_v2",)
        assert delta.classification == CLASS_BREAKING

    def test_struct_added_is_compatible_removed_or_changed_is_breaking(self):
        point = StructType("Point", (FieldDef("x", INT), FieldDef("y", INT)))
        point3 = StructType(
            "Point", (FieldDef("x", INT), FieldDef("y", INT), FieldDef("z", INT))
        )
        base = _description(1, ECHO)
        with_struct = _description(2, ECHO, structs=(point,))
        assert diff_descriptions(base, with_struct).classification == CLASS_COMPATIBLE
        assert diff_descriptions(with_struct, base).classification == CLASS_BREAKING
        mutated = _description(3, ECHO, structs=(point3,))
        delta = diff_descriptions(with_struct, mutated)
        assert delta.classification == CLASS_BREAKING
        assert [change.kind for change in delta.structs] == [CHANGE_SIGNATURE]


class TestIsCompatible:
    def test_additions_keep_old_stubs_working(self):
        assert is_compatible(_description(1, ECHO), _description(2, ECHO, PING))

    def test_removal_and_signature_change_break_old_stubs(self):
        assert not is_compatible(_description(1, ECHO, PING), _description(2, PING))
        changed = OperationSignature("echo", (Parameter("other", STRING),), STRING)
        assert not is_compatible(_description(1, ECHO), _description(2, changed))

    def test_struct_must_survive_unchanged(self):
        point = StructType("Point", (FieldDef("x", INT),))
        bound = _description(1, ECHO, structs=(point,))
        assert not is_compatible(bound, _description(2, ECHO))


class TestDiffDocuments:
    """The same classification, uniformly over the published documents."""

    @pytest.mark.parametrize(
        "technology,render",
        [("soap", generate_wsdl), ("corba", generate_idl)],
        ids=["wsdl", "idl"],
    )
    def test_breaking_rename_classified_from_documents(self, technology, render):
        old = render(_description(1, ECHO))
        new = render(_description(2, ECHO_V2))
        delta = diff_documents(old, new, technology)
        assert delta.classification == CLASS_BREAKING
        assert delta.removed == ("echo",)
        assert delta.added == ("echo_v2",)
        assert delta.old_version == 1 and delta.new_version == 2

    @pytest.mark.parametrize(
        "technology,render",
        [("soap", generate_wsdl), ("corba", generate_idl)],
        ids=["wsdl", "idl"],
    )
    def test_compatible_addition_classified_from_documents(self, technology, render):
        old = render(_description(1, ECHO))
        new = render(_description(2, ECHO, PING))
        assert diff_documents(old, new, technology).classification == CLASS_COMPATIBLE

    def test_unknown_technology_raises(self):
        with pytest.raises(EvolveError):
            parse_description("whatever", "smoke-signals")

    def test_third_technology_parser_registers(self):
        def parser(document: str) -> InterfaceDescription:
            return _description(int(document))

        register_description_parser("test-tech-diff", parser)
        delta = diff_documents("1", "2", "test-tech-diff")
        assert delta.empty
        with pytest.raises(EvolveError):
            register_description_parser("test-tech-diff", parser)
        register_description_parser("test-tech-diff", parser, override=True)


class TestVersionGraph:
    def test_records_and_queries_per_replica_history(self):
        graph = VersionGraph("Svc")
        graph.record(0, 1, _description(1, ECHO), time=0.0)
        graph.record(0, 2, _description(2, ECHO, PING), time=1.0)
        graph.record(1, 1, _description(1, ECHO), time=0.0)
        assert graph.replicas() == (0, 1)
        assert graph.versions(0) == (1, 2)
        assert graph.max_version == 2
        assert graph.latest(0).version == 2
        assert graph.latest(7) is None
        assert graph.description(0, 1).operation_names() == ("echo",)
        with pytest.raises(KeyError):
            graph.description(0, 9)

    def test_record_is_idempotent(self):
        graph = VersionGraph("Svc")
        first = graph.record(0, 1, _description(1, ECHO), time=0.0)
        again = graph.record(0, 1, _description(1, ECHO, PING), time=5.0)
        assert again is first  # the original node wins

    def test_delta_and_edges_use_the_diff_engine(self):
        graph = VersionGraph("Svc")
        graph.record(0, 1, _description(1, ECHO), time=0.0)
        graph.record(0, 2, _description(2, ECHO, PING), time=1.0)
        graph.record(0, 3, _description(3, PING), time=2.0)
        assert graph.delta(0, 1, 2).classification == CLASS_COMPATIBLE
        assert graph.delta(0, 2, 3).classification == CLASS_BREAKING
        edges = graph.edges(0)
        assert [edge.classification for edge in edges] == [
            CLASS_COMPATIBLE,
            CLASS_BREAKING,
        ]
