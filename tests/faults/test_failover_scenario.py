"""Resilience scenarios: crash/restart/partition timelines, §6 recency.

These are the cluster-level tests of :mod:`repro.faults`: a fleet keeps
calling a replicated service while the timeline crashes nodes, partitions
links and restarts machines — and the report must show clean failover
(retries, zero or accounted abandonments), availability bookkeeping
(downtime, recovery latency) and, centrally, **zero §6 recency
violations**: no client ever observes a published interface older than one
it already observed, even when its calls fail over between replicas
mid-publication.
"""

from __future__ import annotations

import pytest

from repro.cluster import POLICY_STICKY, Scenario, edit, op, publish
from repro.core.sde import SDEConfig
from repro.errors import NoAliveReplicaError
from repro.faults import RetryPolicy, crash, drop_link, heal, partition, restart
from repro.rmitypes import STRING


def _echo():
    return op("echo", (("message", STRING),), STRING, body=lambda _self, m: m)


def _drill(policy="round-robin", clients=8, **fleet_kwargs) -> Scenario:
    """2 servers × 2 replicas with a mid-run crash and a later restart."""
    fleet = dict(
        calls=8,
        arguments=("hi",),
        think_time=0.01,
        retry=RetryPolicy(max_attempts=4, timeout=0.5, backoff=0.005),
    )
    fleet.update(fleet_kwargs)
    return (
        Scenario(name="fault-drill", sde_config=SDEConfig(generation_cost=0.02))
        .servers(2)
        .service("Echo", [_echo()], replicas=2, policy=policy)
        .clients(clients, service="Echo", **fleet)
        .at(0.012, crash("server-1"))
        .at(0.150, restart("server-1"))
    )


class TestCrashFailover:
    def test_all_calls_complete_with_zero_recency_violations(self):
        report = _drill().run()
        assert report.total_calls == 8 * 8
        assert report.total_successes == report.total_calls
        assert report.total_abandoned_calls == 0
        # In-flight calls at crash time failed fast and were retried.
        assert report.total_failed_attempts > 0
        assert report.total_retried_calls == report.total_failed_attempts
        assert report.total_recency_violations == 0

    def test_availability_bookkeeping(self):
        report = _drill().run()
        crashed = next(node for node in report.nodes if node.name == "server-1")
        healthy = next(node for node in report.nodes if node.name == "server-2")
        assert crashed.outages == 1
        assert crashed.downtime_s == pytest.approx(0.150 - 0.012)
        assert crashed.recovery_latency_s is not None
        assert crashed.recovery_latency_s > 0.0
        assert healthy.outages == 0
        assert healthy.downtime_s == 0.0
        # Per-replica downtime mirrors the hosting node.
        for service in report.services:
            for replica in service.replicas:
                expected = crashed.downtime_s if replica.node == "server-1" else 0.0
                assert replica.downtime_s == pytest.approx(expected)

    def test_round_robin_routes_around_the_dead_replica(self):
        report = _drill().run()
        dead_replica_calls_during_outage = 0
        for client in report.clients:
            # After the crash every routed call must target an alive replica;
            # replica 0 (server-1) reappears only after the restart.
            sequence = client.replica_sequence
            assert set(sequence) <= {0, 1}
        # The healthy replica carried the bulk of the traffic.
        echo = report.service("Echo")
        by_node = {replica.node: replica.calls_routed for replica in echo.replicas}
        assert by_node["server-2"] > by_node["server-1"]

    def test_sticky_sessions_repin_deterministically_and_stay(self):
        report = _drill(policy=POLICY_STICKY, clients=4).run()
        assert report.total_successes == report.total_calls
        for client in report.clients:
            sequence = client.replica_sequence
            # Once re-pinned away from the crashed replica a session never
            # flaps back, even after the restart.
            if 0 in sequence and 1 in sequence:
                assert sequence.index(1) > sequence.index(0)
                assert all(pick == 1 for pick in sequence[sequence.index(1):])

    def test_two_runs_are_byte_identical(self):
        first = _drill().run()
        second = _drill().run()
        assert first.all_rtts == second.all_rtts
        assert first.events_dispatched == second.events_dispatched
        assert first.duration == second.duration
        assert [c.replica_sequence for c in first.clients] == [
            c.replica_sequence for c in second.clients
        ]

    def test_recovery_latency_does_not_leak_into_a_later_run(self):
        """A fault-free second run on the same world reports no recovery."""
        scenario = _drill()
        runtime = scenario.build()
        first = runtime.run()
        crashed = next(node for node in first.nodes if node.name == "server-1")
        assert crashed.recovery_latency_s is not None
        second = runtime.run(until=0.5)
        for node in second.nodes:
            assert node.outages == 0
            assert node.downtime_s == 0.0
            assert node.recovery_latency_s is None

    def test_application_level_faults_are_never_retried(self):
        """Deterministic protocol faults must not burn the retry budget."""
        scenario = (
            Scenario(name="stale", sde_config=SDEConfig(generation_cost=0.02))
            .servers(1)
            .service("Echo", [_echo()])
            .clients(
                2,
                service="Echo",
                calls=4,
                arguments=("hi",),
                think_time=0.01,
                stale_every=2,  # every 2nd call hits a non-existent operation
                retry=RetryPolicy(max_attempts=4, timeout=0.5, backoff=0.005),
            )
        )
        report = scenario.run()
        assert report.total_stale_faults == 4
        assert report.total_retried_calls == 0
        assert report.total_abandoned_calls == 0

    def test_without_retry_policy_failures_surface_as_faults(self):
        report = _drill(retry=None).run()
        assert report.total_calls == report.total_successes + report.total_other_faults
        assert report.total_other_faults > 0
        assert report.total_retried_calls == 0


class TestCrashDuringPublish:
    """The acceptance scenario: a replica crashes mid-publication and no
    client ever observes an interface older than one it already saw."""

    def _scenario(self) -> Scenario:
        return (
            Scenario(name="crash-during-publish", sde_config=SDEConfig(generation_cost=0.05))
            .servers(2)
            .service("Echo", [_echo()], replicas=2)
            .clients(
                8,
                service="Echo",
                calls=10,
                arguments=("hi",),
                think_time=0.0,   # continuous calling: always in flight at crash time
                arrival=0.002,    # staggered starts desynchronise the fleet
                retry=RetryPolicy(max_attempts=4, timeout=0.5, backoff=0.005),
            )
            .at(0.050, edit("Echo", op("added_mid_run")))
            .at(0.060, publish("Echo"))       # generation completes ~0.11
            .at(0.080, crash("server-1"))     # ... crash lands mid-generation
            .at(0.300, restart("server-1"))
        )

    def test_zero_recency_violations_across_failover(self):
        report = self._scenario().run()
        assert report.total_successes == report.total_calls
        assert report.total_retried_calls > 0
        assert report.total_recency_violations == 0
        # The publication round landed on both replicas despite the crash.
        echo = report.service("Echo")
        assert all(replica.interface_version >= 3 for replica in echo.replicas)

    def test_deterministic(self):
        first = self._scenario().run()
        second = self._scenario().run()
        assert first.all_rtts == second.all_rtts
        assert first.events_dispatched == second.events_dispatched

    def test_recency_counter_detects_an_engineered_violation(self):
        """Negative control: break the guarantee on purpose, see it counted.

        One replica is force-published ahead of the other, a sticky client
        observes the newer interface, then its replica crashes: the failover
        target still publishes the older version, which must be counted.
        """

        def publish_only_first_replica(runtime):
            replica = runtime.replicas("Echo")[0]
            replica.node.manager_interface.force_publication(replica.class_name)

        scenario = (
            Scenario(name="violation", sde_config=SDEConfig(generation_cost=0.01))
            .servers(2)
            .service("Echo", [_echo()], replicas=2, policy=POLICY_STICKY)
            .clients(
                2,
                service="Echo",
                calls=8,
                arguments=("hi",),
                think_time=0.02,
                retry=RetryPolicy(max_attempts=4, timeout=0.5, backoff=0.005),
            )
            .at(0.030, edit("Echo", op("only_on_replica_0")))
            .at(0.040, publish_only_first_replica)
            .at(0.090, crash("server-1"))
        )
        report = scenario.run()
        pinned_to_first = report.clients[0]
        assert pinned_to_first.replica_sequence[0] == 0
        assert report.total_recency_violations > 0


class TestPartitionsAndLossyLinks:
    def test_partition_heals_and_calls_recover(self):
        scenario = (
            Scenario(name="partition", sde_config=SDEConfig(generation_cost=0.02))
            .servers(2)
            .service("Echo", [_echo()], replicas=2)
            .clients(
                6,
                service="Echo",
                calls=6,
                arguments=("hi",),
                think_time=0.01,
                retry=RetryPolicy(max_attempts=6, timeout=0.04, backoff=0.005),
            )
            .at(0.012, partition("server-1"))
            .at(0.120, heal("server-1"))
        )
        report = scenario.run()
        assert report.total_successes == report.total_calls
        # Requests into the partition timed out and were retried.
        assert report.total_failed_attempts > 0
        assert report.total_recency_violations == 0

    def test_lossy_link_is_retried_and_deterministic(self):
        def build():
            return (
                Scenario(name="lossy", sde_config=SDEConfig(generation_cost=0.02))
                .servers(1)
                .service("Echo", [_echo()])
                .clients(
                    4,
                    service="Echo",
                    calls=6,
                    arguments=("hi",),
                    think_time=0.01,
                    retry=RetryPolicy(max_attempts=8, timeout=0.04, backoff=0.002),
                )
                .at(0.010, drop_link("server", "fleet-client-1", loss=0.5, seed=11))
            )

        first = build().run()
        second = build().run()
        assert first.total_successes == first.total_calls
        assert first.total_failed_attempts > 0
        assert first.all_rtts == second.all_rtts
        assert first.events_dispatched == second.events_dispatched

    def test_whole_service_down_abandons_after_budget(self):
        scenario = (
            Scenario(name="blackout", sde_config=SDEConfig(generation_cost=0.02))
            .servers(1)
            .service("Echo", [_echo()])
            .clients(
                3,
                service="Echo",
                calls=4,
                arguments=("hi",),
                think_time=0.01,
                retry=RetryPolicy(max_attempts=2, timeout=0.03, backoff=0.005),
            )
            .at(0.012, crash("server"))
        )
        report = scenario.run()
        assert report.total_abandoned_calls > 0
        assert report.total_calls + report.total_abandoned_calls == 3 * 4
        assert report.total_recency_violations == 0

    def test_selection_raises_when_every_replica_is_down(self):
        runtime = (
            Scenario(name="dead", sde_config=SDEConfig(generation_cost=0.02))
            .servers(1)
            .service("Echo", [_echo()])
            .build()
        )
        runtime.fault_injector.crash("server")
        with pytest.raises(NoAliveReplicaError):
            runtime.registry.select("Echo", "someone")
