"""Unit tests for the fault-injection subsystem: links, crashes, aborts."""

from __future__ import annotations

import pytest

from repro.errors import ConnectionAbortedError
from repro.faults import FaultInjector, LinkFaultProfile, RetryPolicy
from repro.net.simnet import Address, Network
from repro.net.transport import ClientChannel, Endpoint
from repro.sim import Scheduler
from repro.util.rng import DeterministicRng


class TestLinkFaultProfile:
    def test_same_seed_same_fate_sequence(self):
        a = LinkFaultProfile(loss=0.3, jitter=0.01, rng=DeterministicRng(7))
        b = LinkFaultProfile(loss=0.3, jitter=0.01, rng=DeterministicRng(7))
        fates_a = [a.sample(100) for _ in range(50)]
        fates_b = [b.sample(100) for _ in range(50)]
        assert fates_a == fates_b
        assert a.dropped == b.dropped > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFaultProfile(loss=1.5)
        with pytest.raises(ValueError):
            LinkFaultProfile(jitter=-0.1)

    def test_loss_zero_never_drops_and_jitter_zero_never_delays(self):
        profile = LinkFaultProfile(loss=0.0, jitter=0.0)
        assert [profile.sample(10) for _ in range(20)] == [(False, 0.0)] * 20


class TestNetworkLinkFaults:
    def _world(self):
        scheduler = Scheduler()
        network = Network(scheduler)
        source = network.add_host("src")
        sink = network.add_host("dst")
        received = []
        sink.bind(9, lambda message, _host: received.append(message.payload))
        return scheduler, network, source, received

    def test_blackhole_profile_drops_everything(self):
        scheduler, network, source, received = self._world()
        network.set_link_fault("src", "dst", LinkFaultProfile(loss=1.0))
        for index in range(5):
            source.send(Address("dst", 9), b"m%d" % index)
        scheduler.run_until_idle()
        assert received == []
        assert network.stats.messages_dropped == 5

    def test_fault_applies_to_one_direction_only(self):
        scheduler, network, source, received = self._world()
        network.set_link_fault("dst", "src", LinkFaultProfile(loss=1.0))
        source.send(Address("dst", 9), b"fine")
        scheduler.run_until_idle()
        assert received == [b"fine"]

    def test_jitter_never_reorders_a_link_direction(self):
        scheduler, network, source, received = self._world()
        profile = LinkFaultProfile(jitter=0.5, rng=DeterministicRng(3))
        network.set_link_fault("src", "dst", profile)
        for index in range(30):
            source.send(Address("dst", 9), b"%03d" % index)
        scheduler.run_until_idle()
        assert received == sorted(received)
        assert len(received) == 30
        assert profile.delayed > 0

    def test_clear_link_fault_restores_the_link(self):
        scheduler, network, source, received = self._world()
        network.set_link_fault("src", "dst", LinkFaultProfile(loss=1.0))
        source.send(Address("dst", 9), b"lost")
        network.clear_link_fault("src", "dst")
        source.send(Address("dst", 9), b"kept")
        scheduler.run_until_idle()
        assert received == [b"kept"]


class TestDownHosts:
    def test_down_host_drops_in_flight_messages_at_delivery(self):
        scheduler = Scheduler()
        network = Network(scheduler)
        source = network.add_host("src")
        sink = network.add_host("dst")
        received = []
        sink.bind(9, lambda message, _host: received.append(message.payload))
        source.send(Address("dst", 9), b"in-flight")
        # The message is queued for delivery; the host crashes before it lands.
        sink.down = True
        scheduler.run_until_idle()
        assert received == []
        assert sink.stats.messages_dropped == 1
        # Traffic sent while down is discarded at transmit time too.
        source.send(Address("dst", 9), b"doomed")
        scheduler.run_until_idle()
        assert received == []
        # Back up: delivery resumes.
        sink.down = False
        source.send(Address("dst", 9), b"alive")
        scheduler.run_until_idle()
        assert received == [b"alive"]


class TestConnectionAbort:
    def _request_world(self):
        scheduler = Scheduler()
        network = Network(scheduler)
        server_host = network.add_host("server")
        client_host = network.add_host("client")
        endpoint = Endpoint(server_host, 80, lambda message, connection: None)
        endpoint.start()
        channel = ClientChannel(client_host, name="test-channel")
        return scheduler, network, endpoint, channel

    def test_abort_pending_fails_deferreds_fast(self):
        scheduler, network, endpoint, channel = self._request_world()
        outcomes = []
        deferred = channel.request_async(
            Address("server", 80), b"request", lambda message: message.payload
        )
        deferred.subscribe(lambda value, error, _delay: outcomes.append(error))
        # The server "crashes" before any reply: fail the in-flight request now.
        aborted = channel.abort_pending("server")
        assert aborted == 1
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], ConnectionAbortedError)
        assert channel.requests_aborted == 1

    def test_abort_pending_targets_only_the_named_host(self):
        scheduler, network, endpoint, channel = self._request_world()
        other_host = network.add_host("other")
        other = Endpoint(other_host, 80, lambda message, connection: None)
        other.start()
        channel.request_async(Address("server", 80), b"a", lambda m: m.payload)
        channel.request_async(Address("other", 80), b"b", lambda m: m.payload)
        assert channel.abort_pending("server") == 1
        connection = channel.connection_for(Address("other", 80))
        assert connection.pending == 1

    def test_channel_registers_with_its_network(self):
        scheduler, network, endpoint, channel = self._request_world()
        assert channel in network.client_channels

    def test_channel_registry_is_weak_and_compacts(self):
        import gc

        scheduler, network, endpoint, channel = self._request_world()
        extra = ClientChannel(network.host("client"), base_port=60000, name="short-lived")
        assert extra in network.client_channels
        del extra
        gc.collect()
        live = network.client_channels
        assert channel in live
        assert all(ch.name != "short-lived" for ch in live)


class TestRetryPolicyValidation:
    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
