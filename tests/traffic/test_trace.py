"""Trace record/replay: the versioned JSONL format and byte-exact replay."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import CohortModel, Scenario, op
from repro.cluster.presets import fault_drill_scenario
from repro.errors import TraceError
from repro.evolve import rolling, upgrade
from repro.faults import RetryPolicy, crash, heal, partition, restart
from repro.net import LatencyModel
from repro.rmitypes import STRING
from repro.traffic import TRACE_FORMAT, Poisson, TraceReader, record, replay
from repro.traffic.trace import (
    echo_body,
    fingerprint_digest,
    register_trace_body,
    scenario_from_spec,
    scenario_to_spec,
)


def small_world(
    *,
    soap_weight: float = 0.5,
    with_faults: bool = True,
    with_rollout: bool = False,
    arrival=0.001,
    cohort: CohortModel | None = None,
    clients: int = 24,
) -> Scenario:
    echo = op("echo", (("message", STRING),), STRING, body=echo_body)
    scenario = (
        Scenario(name="trace-world")
        .servers(2)
        .service("EchoSoap", [echo], technology="soap", replicas=2)
        .service("EchoCorba", [echo], technology="corba", replicas=2)
        .clients(
            clients,
            protocol_mix={"soap": soap_weight, "corba": round(1 - soap_weight, 2)},
            calls=2,
            operation="echo",
            arguments=("hi",),
            arrival=arrival,
            retry=RetryPolicy(max_attempts=3, timeout=0.08, backoff=0.005),
            cohort=cohort,
        )
    )
    if with_faults:
        scenario.at(0.02, crash("server-1")).at(0.08, restart("server-1"))
        scenario.at(0.03, partition("server-2")).at(0.07, heal("server-2"))
    if with_rollout:
        echo_v2 = op("echo_v2", (("message", STRING),), STRING, body=echo_body)
        scenario.at(
            0.04,
            rolling(
                "EchoSoap",
                upgrade(add=[echo_v2], remove=["echo"], successors={"echo": "echo_v2"}),
                batch_size=1,
                drain=0.005,
            ),
        )
    return scenario


class TestTraceFormat:
    def test_header_spec_calls_summary(self, tmp_path):
        path = tmp_path / "world.jsonl"
        report, reader = record(small_world(with_faults=False), path)
        kinds = [record_["kind"] for record_ in reader.records]
        assert kinds[0] == "header"
        assert kinds[1] == "scenario"
        assert kinds[-1] == "summary"
        assert reader.header["format"] == TRACE_FORMAT
        # One call record per completed (classified) call.
        completed = sum(len(client.rtts) for client in report.clients)
        assert len(reader.calls) == completed
        assert reader.summary["fingerprint_sha256"] == fingerprint_digest(report)
        # The file itself is plain JSONL.
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)
        assert len(lines) == len(reader.records)

    def test_timeline_firings_recorded(self, tmp_path):
        report, reader = record(small_world(), tmp_path / "t.jsonl")
        fired = [event["event"]["kind"] for event in reader.timeline_events]
        assert sorted(fired) == ["crash", "heal", "partition", "restart"]

    def test_until_round_trips(self, tmp_path):
        _, reader = record(small_world(with_faults=False), tmp_path / "u.jsonl", until=0.5)
        assert reader.until == 0.5

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"kind": "something"}\n')
        with pytest.raises(TraceError, match="missing header"):
            TraceReader(path)

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "header", "format": "repro-trace/99"}\n')
        with pytest.raises(TraceError, match="unsupported trace format"):
            TraceReader(path)

    def test_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"kind": "header", "format": "%s"}\nnot json\n' % TRACE_FORMAT)
        with pytest.raises(TraceError, match="malformed trace record"):
            TraceReader(path)


class TestSpecValidation:
    def test_unregistered_body_rejected(self):
        scenario = Scenario().service(
            "Echo", [op("echo", (("m", STRING),), STRING, body=lambda _self, m: m)]
        )
        with pytest.raises(TraceError, match="not traceable: register it"):
            scenario_to_spec(scenario)

    def test_opaque_timeline_action_rejected(self):
        scenario = small_world(with_faults=False).at(0.01, lambda runtime: None)
        with pytest.raises(TraceError, match="opaque"):
            scenario_to_spec(scenario)

    def test_custom_latency_rejected(self):
        with pytest.raises(TraceError, match="latency"):
            scenario_to_spec(Scenario(latency=LatencyModel()))

    def test_non_scalar_arguments_rejected(self):
        scenario = Scenario().service("Echo", [op("echo")]).clients(
            1, service="Echo", arguments=(["nested"],)
        )
        with pytest.raises(TraceError, match="JSON scalars"):
            scenario_to_spec(scenario)

    def test_offsets_count_mismatch_rejected(self):
        spec = scenario_to_spec(small_world(with_faults=False))
        spec["client_groups"][0]["offsets"] = [0.0]
        with pytest.raises(TraceError, match="offsets"):
            scenario_from_spec(spec)

    def test_unknown_body_name_rejected_on_replay(self):
        spec = scenario_to_spec(small_world(with_faults=False))
        spec["services"][0]["operations"][0]["body"] = "never-registered"
        with pytest.raises(TraceError, match="unregistered operation body"):
            scenario_from_spec(spec)

    def test_register_trace_body_round_trips(self):
        def shout(_self, message):
            return str(message).upper()

        register_trace_body("test-shout", shout)
        scenario = Scenario().service(
            "Loud", [op("shout", (("m", STRING),), STRING, body=shout)]
        )
        spec = scenario_to_spec(scenario)
        assert spec["services"][0]["operations"][0]["body"] == "test-shout"
        rebuilt = scenario_from_spec(spec)
        assert rebuilt._services[0].operations[0].body is shout


class TestReplayByteIdentity:
    def test_fault_drill_replays_byte_identical(self, tmp_path):
        report, reader = record(fault_drill_scenario(clients=64), tmp_path / "d.jsonl")
        replayed = replay(reader).run(until=reader.until)
        assert replayed.fingerprint() == report.fingerprint()
        assert fingerprint_digest(replayed) == reader.fingerprint_digest

    def test_replay_accepts_a_path(self, tmp_path):
        path = tmp_path / "p.jsonl"
        report, _ = record(small_world(with_faults=False), path)
        assert replay(path).run().fingerprint() == report.fingerprint()

    def test_seeded_arrivals_are_not_resampled(self, tmp_path):
        # The replayed scenario carries the resolved floats, not the
        # process: its group's arrival is a plain offsets table.
        path = tmp_path / "s.jsonl"
        process = Poisson(rate=400.0, seed=11)
        report, reader = record(
            small_world(with_faults=False, arrival=process), path
        )
        rebuilt = replay(reader)
        group = rebuilt._client_groups[0]
        assert not isinstance(group.arrival, Poisson)
        assert [group.arrival(i) for i in range(group.count)] == process.offsets(
            group.count
        )
        assert rebuilt.run().fingerprint() == report.fingerprint()

    def test_cohort_world_replays_byte_identical(self, tmp_path):
        report, reader = record(
            small_world(
                with_faults=True,
                clients=200,
                cohort=CohortModel(representatives=16),
            ),
            tmp_path / "c.jsonl",
        )
        assert len(reader.flows) > 0
        replayed = replay(reader).run(until=reader.until)
        assert replayed.cohort_fingerprint() == report.cohort_fingerprint()
        assert replayed.fingerprint() == report.fingerprint()

    @given(
        soap_weight=st.sampled_from([0.25, 0.5, 0.75]),
        with_faults=st.booleans(),
        with_rollout=st.booleans(),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_record_replay_property(
        self, tmp_path_factory, soap_weight, with_faults, with_rollout, seed
    ):
        # The satellite property: across soap/corba mixes, fault schedules
        # and a rolling upgrade, record -> replay is always byte-identical.
        path = tmp_path_factory.mktemp("traces") / "world.jsonl"
        scenario = small_world(
            soap_weight=soap_weight,
            with_faults=with_faults,
            with_rollout=with_rollout,
            arrival=Poisson(rate=300.0, seed=seed),
        )
        report, reader = record(scenario, path)
        replayed = replay(reader).run(until=reader.until)
        assert replayed.fingerprint() == report.fingerprint()
        assert replayed.cohort_fingerprint() == report.cohort_fingerprint()
