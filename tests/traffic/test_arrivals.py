"""The seeded arrival processes and the shared offset resolver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ClusterError
from repro.traffic import (
    ArrivalProcess,
    ClientChurn,
    Diurnal,
    FlashCrowd,
    ParetoHeavyTail,
    Poisson,
    resolve_offsets,
)
from repro.traffic.arrivals import offsets_for_positions

ALL_PROCESSES = [
    Poisson(rate=200.0, seed=3),
    ParetoHeavyTail(alpha=1.8, scale=0.002, seed=3),
    Diurnal(curve=(1.0, 3.0, 1.0), period=0.5, seed=3),
    FlashCrowd(at=0.05, magnitude=3.0, decay=0.01, rate=150.0, seed=3),
    ClientChurn(join_rate=300.0, leave_rate=100.0, seed=3),
]


class TestDeterminism:
    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_same_seed_same_offsets(self, process):
        # One seeded stream per process: offsets() is a pure function, so
        # consecutive calls (record, replay, rerun) never drift.
        assert process.offsets(64) == process.offsets(64)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_different_seed_different_offsets(self, process):
        from dataclasses import replace

        assert process.offsets(64) != replace(process, seed=99).offsets(64)

    @pytest.mark.parametrize("process", ALL_PROCESSES, ids=lambda p: type(p).__name__)
    def test_offsets_sorted_non_negative_exact_count(self, process):
        offsets = process.offsets(128)
        assert len(offsets) == 128
        assert offsets == sorted(offsets)
        assert all(offset >= 0.0 for offset in offsets)

    def test_zero_count(self):
        assert Poisson(rate=10.0).offsets(0) == []
        assert resolve_offsets(Poisson(rate=10.0), 0) == []


class TestShapes:
    def test_poisson_mean_spacing(self):
        offsets = Poisson(rate=100.0, seed=1).offsets(2000)
        # Mean inter-arrival ~ 1/rate; generous tolerance, fixed seed.
        assert offsets[-1] / 2000 == pytest.approx(0.01, rel=0.2)

    def test_flash_crowd_clusters_at_the_spike(self):
        process = FlashCrowd(at=0.5, magnitude=4.0, decay=0.01, rate=10.0, seed=2)
        offsets = process.offsets(1000)
        crowd = [o for o in offsets if 0.5 <= o <= 0.5 + 0.1]
        # magnitude=4 puts ~80% of the mass in the crowd.
        assert len(crowd) > 600

    def test_diurnal_mass_follows_the_curve(self):
        process = Diurnal(curve=(1.0, 9.0), period=1.0, seed=4)
        offsets = process.offsets(2000)
        assert all(0.0 <= o < 1.0 for o in offsets)
        peak = sum(1 for o in offsets if o >= 0.5)
        assert peak > 1500  # 90% of intensity lives in the second half

    def test_client_churn_gates_joins_on_departures(self):
        process = ClientChurn(join_rate=1000.0, leave_rate=10.0, population=5, seed=5)
        offsets = process.offsets(50)
        # With a pool of 5 and slow departures, later joiners wait for a
        # slot: the 6th arrival is dominated by a session expiry, not by
        # the (fast) join stream.
        assert offsets[5] > offsets[4]
        assert offsets[-1] > offsets[4] * 2


class TestValidation:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: Poisson(rate=0.0),
            lambda: ParetoHeavyTail(alpha=0.0),
            lambda: ParetoHeavyTail(scale=0.0),
            lambda: Diurnal(curve=()),
            lambda: Diurnal(curve=(1.0, -1.0)),
            lambda: Diurnal(curve=(0.0, 0.0)),
            lambda: Diurnal(period=0.0),
            lambda: FlashCrowd(at=-1.0),
            lambda: FlashCrowd(decay=0.0),
            lambda: ClientChurn(join_rate=0.0),
            lambda: ClientChurn(leave_rate=0.0),
            lambda: ClientChurn(population=0),
        ],
    )
    def test_bad_parameters_rejected(self, build):
        with pytest.raises(ClusterError):
            build()

    def test_negative_count_rejected(self):
        with pytest.raises(ClusterError, match="count must be non-negative"):
            Poisson(rate=1.0).offsets(-1)
        with pytest.raises(ClusterError, match="count must be non-negative"):
            resolve_offsets(0.1, -1)

    def test_sample_count_mismatch_rejected(self):
        class Short(ArrivalProcess):
            def sample(self, rng, count):
                return [0.0] * (count - 1)

        with pytest.raises(ClusterError, match="produced 3 offsets for 4"):
            Short().offsets(4)


class TestResolveOffsets:
    def test_scalar_spacing(self):
        assert resolve_offsets(0.5, 4) == [0.0, 0.5, 1.0, 1.5]

    def test_callable(self):
        assert resolve_offsets(lambda i: i * i * 0.1, 4) == pytest.approx(
            [0.0, 0.1, 0.4, 0.9]
        )

    def test_process_delegates_to_offsets(self):
        process = Poisson(rate=50.0, seed=9)
        assert resolve_offsets(process, 16) == process.offsets(16)

    def test_negative_spacing_rejected(self):
        with pytest.raises(ClusterError, match="spacing must be non-negative"):
            resolve_offsets(-0.1, 4)

    def test_negative_callable_offset_rejected(self):
        with pytest.raises(ClusterError, match="offsets must be non-negative"):
            resolve_offsets(lambda i: -1.0, 2)

    @given(
        positions=st.lists(st.integers(min_value=0, max_value=40), max_size=10),
        seed=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_offsets_for_positions_matches_full_group(self, positions, seed):
        # A subset's offsets are exactly what those positions would get in
        # the full group: cohort aggregation never shifts anyone's arrival.
        process = Poisson(rate=100.0, seed=seed)
        if positions:
            full = resolve_offsets(process, max(positions) + 1)
            expected = [full[p] for p in positions]
        else:
            expected = []
        assert offsets_for_positions(process, positions) == expected

    def test_offsets_for_positions_rejects_negative(self):
        with pytest.raises(ClusterError, match="positions must be non-negative"):
            offsets_for_positions(0.1, [0, -1])
