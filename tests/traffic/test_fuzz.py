"""Seeded scenario fuzzing: the §6 / replay invariants over random worlds.

CI runs this file with ``--hypothesis-seed=0`` (see the ``fuzz`` job): a
bounded, derandomised sweep of ~25 worlds.  A failure leaves the shrunken
case's trace at ``$REPRO_FUZZ_ARTIFACTS/minimized-failure.jsonl`` so the
red run ships a replayable reproduction.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.traffic.fuzz import (
    MINIMIZED_SPANS_NAME,
    MINIMIZED_TRACE_NAME,
    build_scenario,
    case_strategy,
    check_report,
    replay_artifact,
    run_case,
)


@given(case=case_strategy())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_random_worlds_hold_the_invariants(case):
    # §6 recency == 0, no silent wrong answers, call conservation, and
    # byte-identical deterministic replay — for every generated world.  A
    # failing case's trace lands in $REPRO_FUZZ_ARTIFACTS (CI uploads it).
    run_case(case)


def test_violation_writes_a_replayable_artifact(tmp_path, monkeypatch):
    # Force a "violation" by tightening the invariant checker, and verify
    # the failure path serialises a trace that replays.
    case = {
        "servers": 2,
        "cores": None,
        "soap_replicas": 1,
        "corba_replicas": 1,
        "clients": 6,
        "calls": 1,
        "soap_weight": 0.5,
        "think_time": 0.0,
        "arrival": "spacing",
        "arrival_seed": 0,
        "stale_every": None,
        "max_attempts": 2,
        "cohort": False,
        "fault_crash": False,
        "fault_partition": False,
        "crash_at": 0.01,
        "partition_at": 0.01,
        "rollout": None,
        "rollout_at": 0.03,
    }
    import repro.traffic.fuzz as fuzz_module

    monkeypatch.setattr(
        fuzz_module, "check_report", lambda _case, _report: ["synthetic violation"]
    )
    with pytest.raises(AssertionError, match="synthetic violation"):
        run_case(case, artifacts=tmp_path)
    artifact = tmp_path / MINIMIZED_TRACE_NAME
    assert artifact.exists()
    report = replay_artifact(artifact)
    # The artifact is a complete, runnable reproduction of the case.
    assert sum(len(client.rtts) for client in report.clients) == 6
    # The diagnostic re-run left the causal span log beside the trace.
    spans_log = tmp_path / MINIMIZED_SPANS_NAME
    assert spans_log.exists()
    import json

    spans = [json.loads(line) for line in spans_log.read_text().splitlines()]
    assert spans and any(span["kind"] == "server" for span in spans)


def test_check_report_passes_on_a_clean_case():
    case = {
        "servers": 2,
        "cores": None,
        "soap_replicas": 2,
        "corba_replicas": 2,
        "clients": 8,
        "calls": 2,
        "soap_weight": 0.5,
        "think_time": 0.0,
        "arrival": "poisson",
        "arrival_seed": 1,
        "stale_every": 3,
        "max_attempts": 3,
        "cohort": False,
        "fault_crash": True,
        "fault_partition": False,
        "crash_at": 0.02,
        "partition_at": 0.02,
        "rollout": "rolling",
        "rollout_at": 0.05,
    }
    report = build_scenario(case).run()
    assert check_report(case, report) == []
    assert report.total_recency_violations == 0
