"""Property-based tests for the middleware invariants.

The interesting invariants of the paper's mechanisms:

* §5.6 — however the developer edits, the publisher eventually publishes the
  final interface, publication versions are strictly increasing, and two
  consecutive publications never describe the same interface;
* §5.7 / §6 — for any interleaving of edits and stale calls, every stale call
  is answered only after the published interface caught up, and the client's
  refreshed view is at least as recent as the version the server reported.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.sde import SDEConfig
from repro.errors import NonExistentMethodError
from repro.interface import Parameter
from repro.rmitypes import INT
from repro.sim import ResettableTimer, Scheduler
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


# ---------------------------------------------------------------------------
# Timer property (the primitive underneath §5.6)
# ---------------------------------------------------------------------------


class TestResettableTimerProperties:
    @given(
        st.floats(min_value=0.5, max_value=5.0),
        st.lists(st.floats(min_value=0.01, max_value=4.0), max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_fires_exactly_once_at_timeout_after_last_reset(self, timeout, gaps):
        scheduler = Scheduler()
        fired = []
        timer = ResettableTimer(scheduler, timeout, lambda: fired.append(scheduler.now))
        timer.start()
        last_reset = scheduler.now
        for gap in gaps:
            scheduler.run_for(gap)
            if gap < timeout and scheduler.now - last_reset < timeout:
                timer.reset()
                last_reset = scheduler.now
        scheduler.run_until_idle()
        assert len(fired) == 1
        assert fired[0] >= last_reset + timeout - 1e-9


# ---------------------------------------------------------------------------
# Publisher properties (§5.6)
# ---------------------------------------------------------------------------

edit_gaps = st.lists(st.floats(min_value=0.05, max_value=3.0), min_size=1, max_size=8)


class TestPublisherProperties:
    @given(edit_gaps)
    @settings(max_examples=25, deadline=None)
    def test_final_interface_always_published(self, gaps):
        testbed = LiveDevelopmentTestbed(
            sde_config=SDEConfig(publication_timeout=1.0, generation_cost=0.1)
        )
        service, _instance = testbed.create_soap_server("Service", [])
        publisher = testbed.sde.managed_server("Service").publisher

        for index, gap in enumerate(gaps):
            service.add_method(
                f"operation_{index}",
                (Parameter("value", INT),),
                INT,
                body=lambda self, value: value,
                distributed=True,
            )
            testbed.run_for(gap)
        testbed.run_for(1.0 + 3 * 0.1 + 0.01)
        testbed.scheduler.run_until_idle()

        assert publisher.is_published_current()
        assert publisher.published_description.operation_names() == tuple(
            sorted(f"operation_{i}" for i in range(len(gaps)))
        )

    @given(edit_gaps)
    @settings(max_examples=25, deadline=None)
    def test_versions_strictly_increase_and_no_duplicate_publications(self, gaps):
        testbed = LiveDevelopmentTestbed(
            sde_config=SDEConfig(publication_timeout=1.0, generation_cost=0.1)
        )
        service, _instance = testbed.create_soap_server("Service", [])
        publisher = testbed.sde.managed_server("Service").publisher

        for index, gap in enumerate(gaps):
            service.add_method(
                f"operation_{index}", (), INT, body=lambda self: 0, distributed=True
            )
            testbed.run_for(gap)
        testbed.scheduler.run_until_idle()

        history = publisher.publication_history
        versions = [record.version for record in history]
        assert versions == sorted(versions)
        assert len(versions) == len(set(versions))
        for earlier, later in zip(history, history[1:]):
            assert not earlier.description.same_signature(later.description)

    @given(edit_gaps)
    @settings(max_examples=25, deadline=None)
    def test_publications_never_exceed_edits_plus_minimal(self, gaps):
        testbed = LiveDevelopmentTestbed(
            sde_config=SDEConfig(publication_timeout=1.0, generation_cost=0.1)
        )
        service, _instance = testbed.create_soap_server("Service", [])
        publisher = testbed.sde.managed_server("Service").publisher
        for index, gap in enumerate(gaps):
            service.add_method(
                f"operation_{index}", (), INT, body=lambda self: 0, distributed=True
            )
            testbed.run_for(gap)
        testbed.scheduler.run_until_idle()
        assert publisher.stats.publications <= len(gaps) + 1


# ---------------------------------------------------------------------------
# §5.7 / §6 consistency property over random interleavings
# ---------------------------------------------------------------------------


class TestConsistencyProperties:
    @given(
        st.floats(min_value=0.0, max_value=3.0),   # when the developer edits
        st.floats(min_value=0.0, max_value=3.0),   # when the client calls the old method
        st.floats(min_value=0.2, max_value=2.0),   # publication timeout
        st.sampled_from(["soap", "corba"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_recency_guarantee_under_random_timing(self, edit_delay, call_delay, timeout, technology):
        testbed = LiveDevelopmentTestbed(
            sde_config=SDEConfig(publication_timeout=timeout, generation_cost=0.1)
        )
        operations = [
            OperationSpec("add", (("a", INT), ("b", INT)), INT, body=lambda self, a, b: a + b)
        ]
        if technology == "soap":
            service, _instance = testbed.create_soap_server("Service", operations)
            testbed.publish_now("Service")
            binding = testbed.connect_soap_client("Service")
        else:
            service, _instance = testbed.create_corba_server("Service", operations)
            testbed.publish_now("Service")
            binding = testbed.connect_corba_client("Service")

        scheduler = testbed.scheduler
        outcome = {}

        scheduler.schedule(edit_delay, lambda: service.method("add").rename("sum"),
                           label="developer edit")

        def stale_call():
            try:
                outcome["result"] = binding.invoke("add", 1, 2)
            except NonExistentMethodError as error:
                outcome["error"] = error

        scheduler.schedule(edit_delay + 0.001 + call_delay, stale_call, label="client call")
        scheduler.run_until_idle()

        # The call either succeeded (edit not yet visible is impossible here —
        # the rename happens before the call) or failed with the §6 guarantee.
        assert "error" in outcome
        record = binding.guarantee_records[-1]
        assert record.satisfied
        assert binding.description.has_operation("sum")
