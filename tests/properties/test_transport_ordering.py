"""Property-based tests for transport ordering and §5.7 stall semantics.

Two invariants the multi-client scale-out work leans on:

* **per-connection FIFO** — whatever processing delays individual requests
  incur (including deferred replies resolving out of order), the replies on
  one connection leave in request-arrival order;
* **§5.7 drain order** — calls queued behind a stall are processed in
  arrival order once the publisher catches up, for any randomized arrival
  pattern.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.sde import SDEConfig
from repro.core.sde.call_handler import DispatchOutcome
from repro.net import Network, loopback_profile
from repro.net.latency import LatencyModel
from repro.net.simnet import Address
from repro.net.transport import Deferred, Endpoint
from repro.rmitypes import INT, VOID
from repro.sim import Scheduler
from repro.testbed import LiveDevelopmentTestbed, OperationSpec


# ---------------------------------------------------------------------------
# Transport-level FIFO (the Connection invariant)
# ---------------------------------------------------------------------------


class TestConnectionFifoProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=12
        ),
        propagation=st.floats(min_value=0.00001, max_value=0.05),
    )
    @settings(max_examples=60, deadline=None)
    def test_replies_leave_in_arrival_order(self, delays, propagation):
        """Per-request processing delays never reorder replies on one
        connection."""
        scheduler = Scheduler()
        network = Network(
            scheduler, LatencyModel(propagation=propagation, per_message_overhead=0.0001)
        )
        server = network.add_host("server")
        client = network.add_host("client")

        def handler(message, connection):
            index = int(message.payload)
            return message.payload, delays[index]

        endpoint = Endpoint(server, 9000, handler, name="fifo-prop")
        endpoint.start()

        received: list[bytes] = []
        client.bind(40000, lambda message, _host: received.append(message.payload))
        for index in range(len(delays)):
            client.send(Address("server", 9000), b"%d" % index, source_port=40000)
        scheduler.run_until_idle()

        assert received == [b"%d" % index for index in range(len(delays))]

    @given(
        completion_order=st.permutations(list(range(6))),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=6, max_size=6
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_deferred_resolution_order_is_irrelevant(self, completion_order, gaps):
        """Resolving deferred replies in any order still transmits FIFO."""
        scheduler = Scheduler()
        network = Network(scheduler, loopback_profile())
        server = network.add_host("server")
        client = network.add_host("client")

        deferreds: dict[int, Deferred] = {}

        def handler(message, connection):
            deferred: Deferred = Deferred()
            deferreds[int(message.payload)] = deferred
            return deferred

        endpoint = Endpoint(server, 9000, handler)
        endpoint.start()

        received: list[bytes] = []
        client.bind(40000, lambda message, _host: received.append(message.payload))
        for index in range(6):
            client.send(Address("server", 9000), b"%d" % index, source_port=40000)
        scheduler.run_until(lambda: len(deferreds) == 6, description="requests arrive")

        # Resolve in the hypothesis-chosen order at hypothesis-chosen times.
        at = 0.0
        for position, index in enumerate(completion_order):
            at += gaps[position]
            scheduler.schedule(at, deferreds[index].complete, b"%d" % index)
        scheduler.run_until_idle()

        assert received == [b"%d" % index for index in range(6)]


# ---------------------------------------------------------------------------
# §5.7: stalled calls drain in arrival order
# ---------------------------------------------------------------------------


def _stalled_testbed():
    """A testbed whose EchoService has an unpublished edit pending, so the
    next stale call stalls (timer running, no generation in progress)."""
    testbed = LiveDevelopmentTestbed(
        sde_config=SDEConfig(publication_timeout=30.0, reactive_publication=True)
    )
    dynamic_class, _instance = testbed.create_soap_server(
        "EchoService",
        [OperationSpec("echo", (("x", INT),), INT, body=lambda _self, x: x)],
    )
    testbed.publish_now("EchoService")
    dynamic_class.add_method("pending_edit", (), VOID, distributed=True)
    return testbed


class TestStallDrainProperties:
    @given(
        arrivals=st.lists(
            # All arrivals land inside the 0.25 s generation window that the
            # stalled call triggers, so every one of them queues.
            st.floats(min_value=0.0, max_value=0.02),
            min_size=2,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_queued_calls_drain_in_arrival_order(self, arrivals):
        """For any arrival pattern behind a stall, processing order equals
        arrival order once the publisher has caught up."""
        testbed = _stalled_testbed()
        handler = testbed.sde.managed_server("EchoService").call_handler
        completed: list[str] = []

        def dispatch(tag: str, operation: str, arguments: tuple) -> None:
            handler.dispatch(
                operation,
                arguments,
                DispatchOutcome(
                    on_result=lambda value, signature: completed.append(tag),
                    on_fault=lambda error: completed.append(tag),
                ),
            )

        # The stale call stalls the handler (the §5.7 trigger)...
        dispatch("stale", "not_a_method", ())
        assert handler.stalled
        # ...and the randomized arrivals queue behind it.
        at = 0.0
        for index, gap in enumerate(arrivals):
            at += gap
            testbed.scheduler.schedule(at, dispatch, f"call-{index}", "echo", (index,))
        testbed.run_until_idle()

        assert not handler.stalled
        assert completed[0] == "stale"
        assert completed[1:] == [f"call-{index}" for index in range(len(arrivals))]
        assert handler.stats.max_stall_queue_depth == len(arrivals)

    @given(calls=st.integers(min_value=2, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_stalled_replies_reach_clients_in_order(self, calls):
        """End to end over HTTP: a stale call stalls the handler, further
        calls pipeline behind it, and the replies come back in send order
        once the publisher catches up."""
        from repro.soap.envelope import SoapRequest, SoapResponse

        testbed = _stalled_testbed()
        handler = testbed.sde.managed_server("EchoService").call_handler
        binding = testbed.connect_soap_client("EchoService", reactive_updates=False)
        description = binding.description
        registry = description.type_registry()
        http = testbed.cde.http_client

        def post_async(operation, arguments):
            request = SoapRequest.for_call(
                operation, arguments, namespace=description.namespace, registry=registry
            )
            return http.request_async(
                "POST", description.endpoint_url, body=request.to_xml()
            )

        completion_order: list[str] = []
        deferreds = [post_async("not_a_method", ())]
        deferreds[0].subscribe(lambda *_: completion_order.append("stale"))
        testbed.scheduler.run_until(lambda: handler.stalled, description="stall begins")

        for index in range(1, calls):
            deferred = post_async("echo", (index,))
            deferred.subscribe(
                lambda *_, tag=f"echo-{index}": completion_order.append(tag)
            )
            deferreds.append(deferred)
        testbed.run_until_idle()

        assert completion_order == ["stale"] + [f"echo-{i}" for i in range(1, calls)]
        assert handler.stats.stalled_calls == 1
        assert handler.stats.queued_while_stalled == calls - 1
        assert handler.stats.max_stall_queue_depth == calls - 1
        # The queued echo calls all produced real results after the drain.
        for index in range(1, calls):
            response = SoapResponse.from_xml(deferreds[index].wait(testbed.scheduler).body, registry)
            assert not response.is_fault
            assert response.return_value == index
