"""Property tests: batched delivery and arena allocation are invisible.

The fast paths this file pins down:

* ``Host.send_many`` / ``Network.transmit_many`` — vectorised latency
  sampling plus one delivery event per same-arrival run — must be
  byte-identical to calling ``send`` once per payload in order: same
  delivered payload bytes in the same order at the same virtual times, same
  traffic stats, same number of scheduler dispatches;
* message pooling (``Network(pool_messages=True)``) must change nothing an
  observer who parses payloads inside the delivery callback can see;
* the scalar fallback (partitioned / crashed endpoints) must count drops
  exactly like sequential sends.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.net.latency import LatencyModel
from repro.net.simnet import Address, Network
from repro.sim import Scheduler

#: A burst schedule: at each time bucket, send this many payloads of these
#: sizes (sizes repeat deterministically so equal-arrival runs happen often).
_bursts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),  # time bucket
        st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=12),
    ),
    min_size=1,
    max_size=10,
)

_DEST = Address("receiver", 80)


def _payloads(sizes: list[int]) -> list[bytes]:
    # Distinct first byte per message so a reordering cannot cancel out.
    return [bytes([index % 256]) + b"x" * size for index, size in enumerate(sizes)]


def _build(pool_messages: bool) -> tuple[Scheduler, Network, list]:
    scheduler = Scheduler()
    # Finite bandwidth so different sizes produce different arrivals, while
    # equal sizes coalesce into shared delivery batches.
    network = Network(
        scheduler,
        LatencyModel(propagation=0.001, bandwidth_bytes_per_second=10_000.0),
        pool_messages=pool_messages,
    )
    network.add_host("sender")
    receiver = network.add_host("receiver")
    trace: list[tuple[float, bytes]] = []
    # Copy payload bytes at delivery time: with pooling on, the Message
    # object is recycled right after this callback returns.
    receiver.bind(80, lambda message, host: trace.append((host.network.scheduler.now, bytes(message.payload))))
    return scheduler, network, trace


def _run(bursts, batched: bool, pool_messages: bool):
    scheduler, network, trace = _build(pool_messages)
    sender = network.host("sender")

    def send_burst(sizes: list[int]) -> None:
        payloads = _payloads(sizes)
        if batched:
            sender.send_many(_DEST, payloads)
        else:
            for payload in payloads:
                sender.send(_DEST, payload)

    for bucket, sizes in bursts:
        scheduler.schedule(bucket * 0.01, lambda s=sizes: send_burst(s))
    scheduler.run_until_idle()
    stats = network.stats
    return trace, scheduler.dispatched_count, (
        stats.messages_sent,
        stats.bytes_sent,
        stats.messages_received,
        stats.bytes_received,
        stats.messages_dropped,
    )


class TestBatchedDeliveryIdentity:
    @given(bursts=_bursts)
    @settings(max_examples=100, deadline=None)
    def test_send_many_matches_sequential_sends(self, bursts):
        """Payload bytes, delivery times/order, dispatch count and stats are
        identical between ``send_many`` and a sequential ``send`` loop."""
        reference = _run(bursts, batched=False, pool_messages=False)
        batched = _run(bursts, batched=True, pool_messages=False)
        assert batched == reference

    @given(bursts=_bursts)
    @settings(max_examples=100, deadline=None)
    def test_message_pooling_is_invisible(self, bursts):
        """Recycling Message objects changes nothing observable at delivery."""
        plain = _run(bursts, batched=True, pool_messages=False)
        pooled = _run(bursts, batched=True, pool_messages=True)
        assert pooled == plain

    @given(bursts=_bursts)
    @settings(max_examples=60, deadline=None)
    def test_pooling_and_batching_compose(self, bursts):
        """The fully optimised path (batched + pooled) still matches the
        naive per-message, no-pool reference."""
        reference = _run(bursts, batched=False, pool_messages=False)
        optimised = _run(bursts, batched=True, pool_messages=True)
        assert optimised == reference


class TestScalarFallback:
    def _faulted(self, batched: bool, fault: str):
        scheduler, network, trace = _build(pool_messages=False)
        sender = network.host("sender")
        if fault == "partition":
            network.partition("sender", "receiver")
        elif fault == "down":
            network.host("receiver").down = True
        payloads = _payloads([10, 10, 20])
        if batched:
            sender.send_many(_DEST, payloads)
        else:
            for payload in payloads:
                sender.send(_DEST, payload)
        scheduler.run_until_idle()
        stats = network.stats
        return trace, (
            stats.messages_sent,
            stats.messages_dropped,
            stats.messages_received,
        )

    def test_partitioned_link_counts_drops_identically(self):
        assert self._faulted(True, "partition") == self._faulted(False, "partition")
        trace, (sent, dropped, received) = self._faulted(True, "partition")
        assert (trace, sent, dropped, received) == ([], 3, 3, 0)

    def test_down_destination_counts_drops_identically(self):
        assert self._faulted(True, "down") == self._faulted(False, "down")
