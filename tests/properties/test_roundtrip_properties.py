"""Property-based tests (hypothesis) for the wire formats and documents.

Every encoding in the system must round-trip: what one endpoint serialises,
the other must reconstruct exactly.  These properties cover CDR values, GIOP
frames, IORs, HTTP messages, SOAP envelopes, and the WSDL / CORBA-IDL
documents generated from arbitrary interface descriptions.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.corba.cdr import marshal_values, unmarshal_values
from repro.corba.giop import ReplyMessage, ReplyStatus, RequestMessage, parse_message
from repro.corba.idl import generate_idl, parse_idl
from repro.corba.ior import IOR
from repro.interface import InterfaceDescription, OperationSignature, Parameter
from repro.net.http.messages import HttpRequest, HttpResponse
from repro.rmitypes import BOOLEAN, DOUBLE, INT, STRING, TypeRegistry, infer_type
from repro.soap.envelope import SoapRequest, SoapResponse
from repro.soap.wsdl import generate_wsdl, parse_wsdl

# ---------------------------------------------------------------------------
# Value strategies
# ---------------------------------------------------------------------------

#: Text that survives XML round-tripping (no control characters; XML parsers
#: reject them and the paper's payloads are ordinary text).
xml_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), max_codepoint=0x2FFF),
    max_size=40,
)

import keyword

#: Words that cannot be member names: Python keywords (rejected by the shared
#: identifier validation) and IDL reserved words / built-in type names (they
#: would collide with the CORBA-IDL grammar when round-tripping documents).
_RESERVED_WORDS = {
    "module", "interface", "attribute", "sequence",
    "long", "double", "float", "boolean", "string", "char", "void", "in",
}

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda name: not keyword.iskeyword(name) and name not in _RESERVED_WORDS
)

scalar_values = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    xml_text,
)

cdr_values = st.recursive(
    st.one_of(st.none(), scalar_values),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(identifiers, children, max_size=4),
    ),
    max_leaves=12,
)


class TestCdrProperties:
    @given(st.lists(cdr_values, max_size=6))
    @settings(max_examples=150)
    def test_marshal_unmarshal_roundtrip(self, values):
        assert unmarshal_values(marshal_values(tuple(values))) == list(values)

    @given(st.lists(st.integers(min_value=-(2**60), max_value=2**60), max_size=8))
    def test_integer_sequences_roundtrip(self, values):
        assert unmarshal_values(marshal_values(tuple(values))) == values


class TestGiopProperties:
    @given(
        st.integers(min_value=0, max_value=2**31),
        identifiers,
        identifiers,
        st.lists(cdr_values, max_size=4),
    )
    @settings(max_examples=80)
    def test_request_roundtrip(self, request_id, object_key, operation, arguments):
        message = RequestMessage(request_id, object_key, operation, marshal_values(tuple(arguments)))
        parsed = parse_message(message.to_bytes())
        assert isinstance(parsed, RequestMessage)
        assert parsed.request_id == request_id
        assert parsed.object_key == object_key
        assert parsed.operation == operation
        assert unmarshal_values(parsed.arguments_cdr) == list(arguments)

    @given(
        st.integers(min_value=0, max_value=2**31),
        st.sampled_from(list(ReplyStatus)),
        xml_text,
        xml_text,
    )
    @settings(max_examples=80)
    def test_reply_roundtrip(self, request_id, status, exception_type, detail):
        message = ReplyMessage(request_id, status, marshal_values((1,)), exception_type, detail)
        parsed = parse_message(message.to_bytes())
        assert isinstance(parsed, ReplyMessage)
        assert parsed.status == status
        assert parsed.exception_type == exception_type
        assert parsed.exception_detail == detail


class TestIorProperties:
    hostnames = st.from_regex(r"[a-z][a-z0-9\-]{0,15}", fullmatch=True)

    @given(xml_text, hostnames, st.integers(min_value=1, max_value=65535), identifiers)
    @settings(max_examples=100)
    def test_stringify_roundtrip(self, type_id, host, port, object_key):
        ior = IOR(type_id, host, port, object_key)
        assert IOR.from_string(ior.stringify()) == ior


class TestHttpProperties:
    header_names = st.from_regex(r"[A-Za-z][A-Za-z\-]{0,12}", fullmatch=True)
    header_values = st.text(alphabet=string.ascii_letters + string.digits + " ;=/.-_", max_size=20)

    @given(
        st.sampled_from(["GET", "POST", "PUT", "DELETE"]),
        st.from_regex(r"/[a-z0-9/\-_.]{0,20}", fullmatch=True),
        st.lists(
            st.tuples(header_names, header_values),
            max_size=4,
            unique_by=lambda pair: pair[0].title(),
        ),
        st.text(alphabet=string.printable.replace("\r", ""), max_size=200),
    )
    @settings(max_examples=100)
    def test_request_roundtrip(self, method, path, header_pairs, body):
        headers = dict(header_pairs)
        request = HttpRequest(method, path, headers, body)
        parsed = HttpRequest.from_bytes(request.to_bytes())
        assert parsed.method == method
        assert parsed.path == path
        assert parsed.body == body
        for name, value in headers.items():
            assert parsed.header(name) == value.strip()

    @given(st.integers(min_value=100, max_value=599), st.text(alphabet=string.printable.replace("\r", ""), max_size=200))
    @settings(max_examples=60)
    def test_response_roundtrip(self, status, body):
        response = HttpResponse(status, {"Content-Type": "text/plain"}, body)
        parsed = HttpResponse.from_bytes(response.to_bytes())
        assert parsed.status == status
        assert parsed.body == body


# ---------------------------------------------------------------------------
# SOAP envelope properties
# ---------------------------------------------------------------------------

soap_argument = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.booleans(),
    xml_text,
    st.lists(st.integers(min_value=-1000, max_value=1000), max_size=5),
)


class TestSoapEnvelopeProperties:
    @given(identifiers, st.lists(soap_argument, max_size=4))
    @settings(max_examples=100)
    def test_request_roundtrip(self, operation, arguments):
        request = SoapRequest.for_call(operation, tuple(arguments), namespace="urn:prop")
        parsed = SoapRequest.from_xml(request.to_xml())
        assert parsed.operation == operation
        assert list(parsed.arguments) == list(arguments)

    @given(identifiers, soap_argument)
    @settings(max_examples=100)
    def test_response_roundtrip(self, operation, value):
        response = SoapResponse.for_result(operation, value, infer_type(value), namespace="urn:prop")
        parsed = SoapResponse.from_xml(response.to_xml())
        assert not parsed.is_fault
        assert parsed.return_value == value


# ---------------------------------------------------------------------------
# Interface document properties (WSDL and IDL)
# ---------------------------------------------------------------------------

rmi_types = st.sampled_from([INT, DOUBLE, BOOLEAN, STRING])


@st.composite
def interface_descriptions(draw):
    service = draw(st.from_regex(r"[A-Z][A-Za-z0-9]{0,8}", fullmatch=True))
    operation_names = draw(
        st.lists(identifiers, min_size=0, max_size=5, unique=True)
    )
    operations = []
    for name in operation_names:
        parameter_names = draw(st.lists(identifiers, max_size=3, unique=True))
        parameters = tuple(
            Parameter(parameter_name, draw(rmi_types)) for parameter_name in parameter_names
        )
        operations.append(OperationSignature(name, parameters, draw(rmi_types)))
    return InterfaceDescription(
        service_name=service,
        namespace="urn:prop:" + service,
        endpoint_url=f"http://server:8070/sde/{service}",
        version=draw(st.integers(min_value=0, max_value=50)),
    ).with_operations(operations)


class TestInterfaceDocumentProperties:
    @given(interface_descriptions())
    @settings(max_examples=60, deadline=None)
    def test_wsdl_roundtrip_preserves_signature(self, description):
        parsed = parse_wsdl(generate_wsdl(description))
        assert parsed.same_signature(description)
        assert parsed.version == description.version

    @given(interface_descriptions())
    @settings(max_examples=60, deadline=None)
    def test_idl_roundtrip_preserves_signature(self, description):
        parsed = parse_idl(generate_idl(description))
        assert parsed.same_signature(description)
        assert parsed.version == description.version

    @given(interface_descriptions(), interface_descriptions())
    @settings(max_examples=40, deadline=None)
    def test_diff_is_antisymmetric_on_added_removed(self, one, two):
        forward = one.diff(two)
        backward = two.diff(one)
        assert set(forward.added) == set(backward.removed)
        assert set(forward.removed) == set(backward.added)
        assert set(forward.changed) == set(backward.changed)

    @given(interface_descriptions())
    @settings(max_examples=40, deadline=None)
    def test_diff_with_self_is_empty(self, description):
        assert description.diff(description).empty
