"""Property tests for the simulation-core fast paths.

The perf work (tuple heap entries, live pending counter, lazy cancel purge,
envelope skeleton cache, bytearray CDR buffers) must be invisible to every
observer except the wall clock.  These properties pin that down:

* the optimized scheduler dispatches in exactly ``(time, insertion-order)``
  under arbitrary schedule/cancel churn, matching a naive reference
  implementation event for event;
* ``pending_count`` stays equal to a full queue scan at every step;
* the SOAP envelope fast path emits byte-identical documents to the generic
  serialiser for arbitrary RMI values (and the disabled fast path, i.e. the
  slow path itself, agrees too);
* CDR marshalling round-trips arbitrary nested values and matches pinned
  golden wire bytes (the fast buffer cannot drift the format).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.corba.cdr import marshal_values, unmarshal_values
from repro.sim import Scheduler
from repro.soap.envelope import SoapRequest, SoapResponse, set_fast_serialization
from repro.rmitypes import infer_type
from repro.xmlutil import serialize


# ---------------------------------------------------------------------------
# Scheduler dispatch order under cancellation churn
# ---------------------------------------------------------------------------

#: One scheduled event: (delay-bucket, cancel-the-event-this-many-back).
_churn_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    ),
    min_size=1,
    max_size=80,
)


class TestSchedulerChurnProperties:
    @given(ops=_churn_ops)
    @settings(max_examples=120, deadline=None)
    def test_dispatch_order_matches_reference_under_cancellation(self, ops):
        """Pre-run cancels never perturb the (time, insertion) order of the
        survivors, and cancelled events never run."""
        scheduler = Scheduler()
        dispatched: list[int] = []
        events = []
        expected = []  # (time_bucket, insertion_index) of surviving events
        for index, (bucket, cancel_back) in enumerate(ops):
            event = scheduler.schedule(
                bucket * 0.125, lambda i=index: dispatched.append(i)
            )
            events.append((index, bucket, event))
            if cancel_back is not None and cancel_back <= len(events):
                events[-cancel_back][2].cancel()

        survivors = [
            (bucket, index) for index, bucket, event in events if not event.cancelled
        ]
        survivors.sort()
        scheduler.run_until_idle()
        assert dispatched == [index for _bucket, index in survivors]
        assert scheduler.pending_count == 0

    @given(ops=_churn_ops)
    @settings(max_examples=120, deadline=None)
    def test_pending_count_matches_live_scan(self, ops):
        """The O(1) counter agrees with an exhaustive pending scan after
        every schedule/cancel and after every dispatch."""
        scheduler = Scheduler()
        events = []
        for bucket, cancel_back in ops:
            events.append(scheduler.schedule(bucket * 0.125, lambda: None))
            if cancel_back is not None and cancel_back <= len(events):
                events[-cancel_back].cancel()
            assert scheduler.pending_count == sum(1 for e in events if e.pending)
        while scheduler.step():
            assert scheduler.pending_count == sum(1 for e in events if e.pending)

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_mid_run_cancellation_matches_reference(self, ops):
        """Events cancelling *future* events mid-run behave exactly like a
        naive sorted-list reference scheduler."""

        # Reference: pick the lowest (time, seq) live event, run its effect.
        cancelled_ref = set()
        order_ref: list[int] = []
        reference = sorted(
            (bucket, index, ahead) for index, (bucket, ahead) in enumerate(ops)
        )
        done_ref = set()
        while True:
            candidate = next(
                (
                    entry
                    for entry in reference
                    if entry[1] not in done_ref and entry[1] not in cancelled_ref
                ),
                None,
            )
            if candidate is None:
                break
            _bucket, index, ahead = candidate
            done_ref.add(index)
            order_ref.append(index)
            if ahead is not None and index + ahead < len(ops):
                cancelled_ref.add(index + ahead)

        # Optimized scheduler, same semantics expressed through Event.cancel.
        scheduler = Scheduler()
        order: list[int] = []
        events: list = []

        def make_callback(index: int, ahead: int | None):
            def run() -> None:
                order.append(index)
                if ahead is not None and index + ahead < len(events):
                    events[index + ahead].cancel()

            return run

        for index, (bucket, ahead) in enumerate(ops):
            events.append(scheduler.schedule(bucket * 0.125, make_callback(index, ahead)))
        scheduler.run_until_idle()
        assert order == order_ref


# ---------------------------------------------------------------------------
# SOAP envelope fast path: byte identity
# ---------------------------------------------------------------------------

_xml_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=40
)
_primitive = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.booleans(),
    _xml_text,
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
# Arrays must be homogeneous: infer_type derives the element type from the
# first item and both serialisation paths reject mixed lists identically.
_homogeneous_list = st.one_of(
    st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1), min_size=1, max_size=5),
    st.lists(st.booleans(), min_size=1, max_size=5),
    st.lists(_xml_text, min_size=1, max_size=5),
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=5
    ),
)
_value = st.one_of(_primitive, _homogeneous_list)
_operation = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,12}", fullmatch=True)
_namespace = st.sampled_from(
    ["urn:sde:EchoService", "urn:repro", "urn:x-test:service", "http://example.org/ns"]
)


class TestEnvelopeFastPathProperties:
    @given(operation=_operation, namespace=_namespace, arguments=st.lists(_value, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_request_fast_path_is_byte_identical(self, operation, namespace, arguments):
        request = SoapRequest.for_call(operation, tuple(arguments), namespace=namespace)
        fast = request.to_xml()
        assert fast == serialize(request.to_element())
        previous = set_fast_serialization(False)
        try:
            assert request.to_xml() == fast
        finally:
            set_fast_serialization(previous)
        # The wire document parses back into the same operation/arity.
        parsed = SoapRequest.from_xml(fast)
        assert parsed.operation == operation
        assert len(parsed.arguments) == len(arguments)

    @given(operation=_operation, namespace=_namespace, value=_value)
    @settings(max_examples=150, deadline=None)
    def test_response_fast_path_is_byte_identical(self, operation, namespace, value):
        response = SoapResponse.for_result(
            operation, value, infer_type(value), namespace=namespace
        )
        fast = response.to_xml()
        assert fast == serialize(response.to_element())
        previous = set_fast_serialization(False)
        try:
            assert response.to_xml() == fast
        finally:
            set_fast_serialization(previous)


class TestZeroCopyWireEncoding:
    """``to_wire`` splices cached pre-encoded skeleton segments; it must be
    byte-identical to ``to_xml().encode("utf-8")`` — including for non-ASCII
    argument text, where the str/bytes length split matters — with the fast
    path on or off."""

    @given(operation=_operation, namespace=_namespace, arguments=st.lists(_value, max_size=4))
    @settings(max_examples=150, deadline=None)
    def test_request_wire_matches_encoded_xml(self, operation, namespace, arguments):
        request = SoapRequest.for_call(operation, tuple(arguments), namespace=namespace)
        expected = request.to_xml().encode("utf-8")
        assert request.to_wire() == expected
        xml, wire = request.to_xml_and_wire()
        assert (xml, wire) == (request.to_xml(), expected)
        previous = set_fast_serialization(False)
        try:
            assert request.to_wire() == expected
            assert request.to_xml_and_wire() == (xml, expected)
        finally:
            set_fast_serialization(previous)

    @given(operation=_operation, namespace=_namespace, value=_value)
    @settings(max_examples=150, deadline=None)
    def test_response_wire_matches_encoded_xml(self, operation, namespace, value):
        response = SoapResponse.for_result(
            operation, value, infer_type(value), namespace=namespace
        )
        expected = response.to_xml().encode("utf-8")
        assert response.to_wire() == expected
        assert response.to_xml_and_wire() == (response.to_xml(), expected)
        previous = set_fast_serialization(False)
        try:
            assert response.to_wire() == expected
        finally:
            set_fast_serialization(previous)

    def test_fault_response_wire_uses_slow_path(self):
        from repro.soap.faults import SoapFault

        response = SoapResponse.for_fault("op", SoapFault.non_existent_method("op"))
        assert response.to_wire() == response.to_xml().encode("utf-8")


# ---------------------------------------------------------------------------
# CDR wire format stability
# ---------------------------------------------------------------------------

_cdr_value = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**63), max_value=2**63 - 1),
        st.floats(allow_nan=False),
        st.text(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


class TestCdrProperties:
    @given(values=st.lists(_cdr_value, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_marshal_roundtrip(self, values):
        wire = marshal_values(tuple(values))
        decoded = unmarshal_values(wire)
        # Tuples marshal as sequences, so compare list-normalised.
        def normalise(value):
            if isinstance(value, tuple):
                return [normalise(item) for item in value]
            if isinstance(value, list):
                return [normalise(item) for item in value]
            if isinstance(value, dict):
                return {key: normalise(item) for key, item in value.items()}
            return value

        assert decoded == [normalise(value) for value in values]

    def test_golden_wire_bytes(self):
        """The buffer rework must not drift the wire format: these bytes are
        what the seed's fragment-list implementation produced."""
        wire = marshal_values((None, True, 7, 2.5, "hi", [1], {"k": "v"}))
        assert wire == bytes.fromhex(
            "00000007"  # 7 values
            "00"  # null
            "0101"  # boolean true
            "020000000000000007"  # long 7
            "034004000000000000"  # double 2.5
            "04000000026869"  # string "hi"
            "0600000001020000000000000001"  # sequence [1]
            "0700000001000000016b040000000176"  # struct {"k": "v"}
        )
